package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streampca/internal/mat"
)

// lowRankData builds an n×m matrix whose rows live near a rank-k subspace
// plus small noise, the regime PCA detection assumes.
func lowRankData(rng *rand.Rand, n, m, k int, noise float64) *mat.Matrix {
	basis := mat.NewMatrix(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			basis.Set(i, j, rng.NormFloat64())
		}
	}
	x := mat.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		coeff := make([]float64, k)
		for j := range coeff {
			coeff[j] = rng.NormFloat64() * 10
		}
		row := x.RowView(i)
		for a := 0; a < m; a++ {
			var s float64
			for j := 0; j < k; j++ {
				s += basis.At(a, j) * coeff[j]
			}
			row[a] = 100 + s + noise*rng.NormFloat64()
		}
	}
	return x
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(mat.NewMatrix(1, 3)); !errors.Is(err, ErrInput) {
		t.Fatalf("one row: %v", err)
	}
	if _, err := Fit(mat.NewMatrix(5, 0)); !errors.Is(err, ErrInput) {
		t.Fatalf("no columns: %v", err)
	}
	bad := mat.NewMatrix(3, 2)
	bad.Set(0, 0, math.NaN())
	if _, err := Fit(bad); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN: %v", err)
	}
}

func TestFitRecoversSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, m, k := 300, 12, 3
	x := lowRankData(rng, n, m, k, 0.01)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	if model.WindowLen != n || model.NumFlows() != m {
		t.Fatalf("model dims: n=%d m=%d", model.WindowLen, model.NumFlows())
	}
	// Energy concentrates in the top k components.
	var total, top float64
	for j, s := range model.Singular {
		total += s * s
		if j < k {
			top += s * s
		}
	}
	if top/total < 0.99 {
		t.Fatalf("top-%d energy fraction = %v", k, top/total)
	}
	// Descending singular values.
	for j := 1; j < m; j++ {
		if model.Singular[j] > model.Singular[j-1]+1e-9 {
			t.Fatal("singular values not descending")
		}
	}
}

func TestFitMatchesSVDOfCenteredMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := lowRankData(rng, 60, 7, 4, 1)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	y := x.Clone()
	y.CenterColumns()
	svd, err := mat.ComputeSVD(y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range model.Singular {
		if math.Abs(model.Singular[j]-svd.Values[j]) > 1e-7*math.Max(1, svd.Values[0]) {
			t.Fatalf("η_%d = %v vs SVD %v", j, model.Singular[j], svd.Values[j])
		}
	}
}

func TestCenterAndScore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := lowRankData(rng, 50, 5, 2, 0.5)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	raw := x.Row(0)
	y, err := model.Center(raw)
	if err != nil {
		t.Fatal(err)
	}
	for j := range y {
		if math.Abs(y[j]-(raw[j]-model.Means[j])) > 1e-12 {
			t.Fatal("center mismatch")
		}
	}
	if _, err := model.Center([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short vector: %v", err)
	}
	if _, err := model.Score(y, -1); !errors.Is(err, ErrRank) {
		t.Fatalf("bad component: %v", err)
	}
	if _, err := model.Score([]float64{1}, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("short score vector: %v", err)
	}
	// Scores reconstruct the vector: Σ_j score_j² == ‖y‖².
	var sum float64
	for j := 0; j < model.NumFlows(); j++ {
		s, err := model.Score(y, j)
		if err != nil {
			t.Fatal(err)
		}
		sum += s * s
	}
	want := mat.Dot(y, y)
	if math.Abs(sum-want) > 1e-8*math.Max(1, want) {
		t.Fatalf("Σ score² = %v, ‖y‖² = %v", sum, want)
	}
}

func TestComponentStdDev(t *testing.T) {
	model := &Model{Singular: []float64{6, 3}, WindowLen: 10, Means: []float64{0, 0}}
	got, err := model.ComponentStdDev(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("σ_0 = %v, want 2", got)
	}
	if _, err := model.ComponentStdDev(5); !errors.Is(err, ErrRank) {
		t.Fatalf("bad index: %v", err)
	}
}

func TestEnergyRank(t *testing.T) {
	model := &Model{Singular: []float64{3, 2, 1, 0}, WindowLen: 10, Means: make([]float64, 4)}
	// Energies: 9, 4, 1, 0; total 14.
	tests := []struct {
		frac float64
		want int
	}{
		{0.5, 1}, {0.9, 2}, {0.95, 3}, {1.0, 3},
	}
	for _, tt := range tests {
		got, err := model.EnergyRank(tt.frac)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Fatalf("EnergyRank(%v) = %d, want %d", tt.frac, got, tt.want)
		}
	}
	if _, err := model.EnergyRank(0); !errors.Is(err, ErrRank) {
		t.Fatalf("frac 0: %v", err)
	}
	if _, err := model.EnergyRank(1.5); !errors.Is(err, ErrRank) {
		t.Fatalf("frac > 1: %v", err)
	}
	zero := &Model{Singular: []float64{0, 0}, WindowLen: 5, Means: make([]float64, 2)}
	if got, err := zero.EnergyRank(0.9); err != nil || got != 0 {
		t.Fatalf("zero spectrum rank = %d, %v", got, err)
	}
}

func TestThreeSigmaRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 400, 8
	x := lowRankData(rng, n, m, 3, 0.5)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	r, err := model.ThreeSigmaRank(x)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > m {
		t.Fatalf("rank = %d", r)
	}
	// Inject a hard outlier aligned with the first component: the heuristic
	// must now flag an early component.
	spiked := x.Clone()
	row := spiked.RowView(0)
	for j := range row {
		row[j] += 1e4 * model.Components.At(j, 0)
	}
	model2, err := Fit(spiked)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := model2.ThreeSigmaRank(spiked)
	if err != nil {
		t.Fatal(err)
	}
	if r2 > r {
		t.Fatalf("outlier must not grow the normal subspace: %d vs %d", r2, r)
	}
	if _, err := model.ThreeSigmaRank(mat.NewMatrix(10, 3)); !errors.Is(err, ErrInput) {
		t.Fatalf("wrong width: %v", err)
	}
	if _, err := model.ThreeSigmaRank(mat.NewMatrix(1, m)); !errors.Is(err, ErrInput) {
		t.Fatalf("short window: %v", err)
	}
}

func TestScreeRank(t *testing.T) {
	if _, err := ScreeRank(nil); !errors.Is(err, ErrInput) {
		t.Fatalf("empty: %v", err)
	}
	if r, err := ScreeRank([]float64{5}); err != nil || r != 1 {
		t.Fatalf("single = %d, %v", r, err)
	}
	// Clear elbow after 3 components.
	sv := []float64{100, 80, 60, 1, 0.9, 0.8, 0.7}
	r, err := ScreeRank(sv)
	if err != nil {
		t.Fatal(err)
	}
	if r < 3 || r > 4 {
		t.Fatalf("scree rank = %d, want ≈3–4", r)
	}
	if r, err := ScreeRank([]float64{0, 0, 0}); err != nil || r != 1 {
		t.Fatalf("all-zero rank = %d, %v", r, err)
	}
}

func TestDetectorBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankData(rng, 500, 10, 3, 0.5)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(model, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if det.Rank() != 3 || det.Alpha() != 0.01 || det.Model() != model {
		t.Fatal("accessors mismatch")
	}
	if det.Threshold() <= 0 {
		t.Fatalf("threshold = %v", det.Threshold())
	}

	// A typical window row should be below threshold.
	var anomalies int
	for i := 0; i < x.Rows(); i++ {
		bad, _, err := det.IsAnomalous(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if bad {
			anomalies++
		}
	}
	if rate := float64(anomalies) / float64(x.Rows()); rate > 0.1 {
		t.Fatalf("false-alarm rate on training data = %v", rate)
	}

	// A vector pushed far along a residual direction must trip it.
	outlier := x.Row(0)
	for j := range outlier {
		outlier[j] += 1e3 * model.Components.At(j, 9)
	}
	bad, dist, err := det.IsAnomalous(outlier)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Fatalf("outlier not detected: distance %v vs threshold %v", dist, det.Threshold())
	}
}

func TestDetectorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := lowRankData(rng, 50, 4, 2, 0.5)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetector(nil, 1, 0.01); !errors.Is(err, ErrInput) {
		t.Fatalf("nil model: %v", err)
	}
	if _, err := NewDetector(model, -1, 0.01); !errors.Is(err, ErrRank) {
		t.Fatalf("negative rank: %v", err)
	}
	if _, err := NewDetector(model, 5, 0.01); !errors.Is(err, ErrRank) {
		t.Fatalf("rank > m: %v", err)
	}
	det, err := NewDetector(model, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Distance([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short vector: %v", err)
	}
}

func TestDecompose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := lowRankData(rng, 100, 6, 2, 0.5)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(model, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	raw := x.Row(5)
	normal, anomaly, err := det.Decompose(raw)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := model.Center(raw)
	for j := range y {
		if math.Abs(normal[j]+anomaly[j]-y[j]) > 1e-9 {
			t.Fatal("normal + anomaly must equal centered vector")
		}
	}
	// ‖anomaly‖ equals the reported distance.
	dist, err := det.Distance(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mat.Norm(anomaly)-dist) > 1e-8*math.Max(1, dist) {
		t.Fatalf("‖anomaly‖ = %v, distance = %v", mat.Norm(anomaly), dist)
	}
	// The two parts are orthogonal.
	if dot := mat.Dot(normal, anomaly); math.Abs(dot) > 1e-6*math.Max(1, mat.Dot(y, y)) {
		t.Fatalf("subspace parts not orthogonal: %v", dot)
	}
}

func TestWindowRing(t *testing.T) {
	w, err := NewWindow(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Full() || w.Len() != 0 || w.Cap() != 3 {
		t.Fatal("fresh window state")
	}
	for i := 1; i <= 5; i++ {
		if err := w.Push([]float64{float64(i), float64(10 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatal("window must be full with 3 rows")
	}
	m := w.Matrix()
	// Oldest remaining is row 3.
	want := [][]float64{{3, 30}, {4, 40}, {5, 50}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Fatalf("window matrix = %v", m)
			}
		}
	}
	if err := w.Push([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short push: %v", err)
	}
	if _, err := NewWindow(1, 1); !errors.Is(err, ErrInput) {
		t.Fatalf("tiny window: %v", err)
	}
}

func TestSlidingDetectorLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, m := 60, 6
	x := lowRankData(rng, 400, m, 2, 0.5)
	sd, err := NewSlidingDetector(SlidingConfig{
		WindowLen: n, NumFlows: m, Rank: 2, Alpha: 0.01, RefitEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var readyAt = -1
	var anomalies int
	for i := 0; i < x.Rows(); i++ {
		res, err := sd.Observe(x.Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Ready && readyAt < 0 {
			readyAt = i
		}
		if !res.Ready && readyAt >= 0 {
			t.Fatal("detector must stay ready once warmed")
		}
		if res.Anomalous {
			anomalies++
		}
	}
	if readyAt != n-1 {
		t.Fatalf("ready at %d, want %d", readyAt, n-1)
	}
	if sd.Refits() == 0 || sd.Detector() == nil {
		t.Fatal("no refits happened")
	}
	// With cadence 5 and (400−60+1) ready steps, refits ≈ 69.
	if sd.Refits() > 80 || sd.Refits() < 60 {
		t.Fatalf("refits = %d", sd.Refits())
	}
	if rate := float64(anomalies) / 340; rate > 0.2 {
		t.Fatalf("false alarms = %v", rate)
	}
}

func TestSlidingDetectorDetectsInjectedSpike(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n, m := 80, 8
	x := lowRankData(rng, 300, m, 2, 0.5)
	// Refit on a cadence so the spiked interval is tested against a model
	// fitted on clean data — with per-interval refits the spike would
	// contaminate the components it is tested against (the poisoning
	// effect the paper cites from Rubinstein et al.).
	sd, err := NewSlidingDetector(SlidingConfig{
		WindowLen: n, NumFlows: m, Rank: 2, Alpha: 0.02, RefitEvery: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	spikeAt := 250 // not on the refit grid 79+7k
	var spikeResult Result
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		if i == spikeAt {
			// A volume anomaly concentrated on two flows breaks the
			// low-rank structure and must land in the residual subspace.
			row[0] += 500
			row[3] += 300
		}
		res, err := sd.Observe(row)
		if err != nil {
			t.Fatal(err)
		}
		if i == spikeAt {
			spikeResult = res
		}
	}
	if !spikeResult.Ready || !spikeResult.Anomalous {
		t.Fatalf("spike not detected: %+v", spikeResult)
	}
}

func TestSlidingDetectorValidation(t *testing.T) {
	base := SlidingConfig{WindowLen: 10, NumFlows: 4, Rank: 2, Alpha: 0.01}
	bad := base
	bad.Rank = 9
	if _, err := NewSlidingDetector(bad); !errors.Is(err, ErrRank) {
		t.Fatalf("rank: %v", err)
	}
	bad = base
	bad.Alpha = 0
	if _, err := NewSlidingDetector(bad); !errors.Is(err, ErrInput) {
		t.Fatalf("alpha: %v", err)
	}
	bad = base
	bad.RefitEvery = -1
	if _, err := NewSlidingDetector(bad); !errors.Is(err, ErrInput) {
		t.Fatalf("cadence: %v", err)
	}
	bad = base
	bad.WindowLen = 1
	if _, err := NewSlidingDetector(bad); !errors.Is(err, ErrInput) {
		t.Fatalf("window: %v", err)
	}
}

// Property: distance is zero for vectors inside the normal subspace and
// positive for vectors with residual mass; rank = m ⇒ distance always 0.
func TestQuickDistanceSubspaceGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := lowRankData(rng, 120, 6, 3, 0.5)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewDetector(model, 6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewDetector(model, 3, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random vector in the span of the first 3 components, offset by
		// the means so Center recovers it exactly.
		y := make([]float64, 6)
		for j := 0; j < 3; j++ {
			c := r.NormFloat64() * 100
			for i := 0; i < 6; i++ {
				y[i] += c * model.Components.At(i, j)
			}
		}
		raw := make([]float64, 6)
		for i := range raw {
			raw[i] = y[i] + model.Means[i]
		}
		dFull, err := full.Distance(raw)
		if err != nil {
			return false
		}
		dPart, err := part.Distance(raw)
		if err != nil {
			return false
		}
		scale := math.Max(1, mat.Norm(y))
		return dFull < 1e-7*scale && dPart < 1e-7*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance is monotone non-increasing in the rank r.
func TestQuickDistanceMonotoneInRank(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := lowRankData(rng, 100, 5, 2, 1)
	model, err := Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	dets := make([]*Detector, 6)
	for r := 0; r <= 5; r++ {
		d, err := NewDetector(model, r, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		dets[r] = d
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		raw := make([]float64, 5)
		for i := range raw {
			raw[i] = 100 + 50*r.NormFloat64()
		}
		prev := math.Inf(1)
		for rank := 0; rank <= 5; rank++ {
			d, err := dets[rank].Distance(raw)
			if err != nil {
				return false
			}
			if d > prev+1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
