package pca

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/mat"
	"streampca/internal/stats"
)

// Window is a fixed-capacity ring buffer of measurement vectors, oldest
// evicted first — the O(nm) state Lakhina's method must keep.
type Window struct {
	n, m  int
	rows  []float64 // ring storage, n×m
	head  int       // index of the oldest row
	count int
}

// NewWindow returns a window for n vectors of m flows.
func NewWindow(n, m int) (*Window, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("%w: window %dx%d", ErrInput, n, m)
	}
	return &Window{n: n, m: m, rows: make([]float64, n*m)}, nil
}

// Cap returns the window capacity n.
func (w *Window) Cap() int { return w.n }

// Len returns the number of vectors currently held.
func (w *Window) Len() int { return w.count }

// Full reports whether the window holds n vectors.
func (w *Window) Full() bool { return w.count == w.n }

// Push appends a measurement vector, evicting the oldest when full.
func (w *Window) Push(x []float64) error {
	if len(x) != w.m {
		return fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(x), w.m)
	}
	var slot int
	if w.count < w.n {
		slot = (w.head + w.count) % w.n
		w.count++
	} else {
		slot = w.head
		w.head = (w.head + 1) % w.n
	}
	copy(w.rows[slot*w.m:(slot+1)*w.m], x)
	return nil
}

// Oldest returns the oldest row as a view into the ring storage; it is only
// valid until the next Push. The window must be non-empty.
func (w *Window) Oldest() ([]float64, error) {
	if w.count == 0 {
		return nil, fmt.Errorf("%w: empty window", ErrInput)
	}
	return w.rows[w.head*w.m : (w.head+1)*w.m], nil
}

// Matrix materializes the window contents as a Len()×m matrix, oldest row
// first. The data is copied.
func (w *Window) Matrix() *mat.Matrix {
	out := mat.NewMatrix(w.count, w.m)
	for i := 0; i < w.count; i++ {
		slot := (w.head + i) % w.n
		copy(out.RowView(i), w.rows[slot*w.m:(slot+1)*w.m])
	}
	return out
}

// SlidingConfig parameterizes a SlidingDetector.
type SlidingConfig struct {
	// WindowLen is n. Required, ≥ 2.
	WindowLen int
	// NumFlows is m. Required, ≥ 1.
	NumFlows int
	// Rank is the fixed normal-subspace rank r.
	Rank int
	// Alpha is the false-alarm rate for the Q threshold.
	Alpha float64
	// RefitEvery is the retraining cadence in intervals once the window is
	// full; 1 (the default when 0) refits on every interval, which is the
	// O(m²n)-per-interval cost profile the paper attributes to Lakhina's
	// method.
	RefitEvery int
}

// SlidingDetector runs the full (exact) Lakhina method online: it keeps the
// raw window, refits PCA on a cadence and tests each arriving vector.
type SlidingDetector struct {
	cfg        SlidingConfig
	window     *Window
	det        *Detector
	sinceRefit int
	refits     int
}

// NewSlidingDetector validates cfg and returns an empty detector.
func NewSlidingDetector(cfg SlidingConfig) (*SlidingDetector, error) {
	if cfg.RefitEvery == 0 {
		cfg.RefitEvery = 1
	}
	if cfg.RefitEvery < 0 {
		return nil, fmt.Errorf("%w: refit cadence %d", ErrInput, cfg.RefitEvery)
	}
	if cfg.Rank < 0 || cfg.Rank > cfg.NumFlows {
		return nil, fmt.Errorf("%w: rank %d with %d flows", ErrRank, cfg.Rank, cfg.NumFlows)
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("%w: alpha %v", ErrInput, cfg.Alpha)
	}
	w, err := NewWindow(cfg.WindowLen, cfg.NumFlows)
	if err != nil {
		return nil, err
	}
	return &SlidingDetector{cfg: cfg, window: w}, nil
}

// Result reports the outcome of one Observe call.
type Result struct {
	// Ready is false while the window is still filling; the remaining
	// fields are meaningful only when Ready.
	Ready bool
	// Distance is the anomaly distance of the observed vector.
	Distance float64
	// Threshold is the Q-statistic threshold in force.
	Threshold float64
	// Anomalous reports Distance > Threshold.
	Anomalous bool
	// Refitted reports whether this observation triggered a PCA refit.
	Refitted bool
	// ThresholdUnavailable reports that the current model's residual
	// spectrum admits no Q threshold (stats.ErrDegenerate); Threshold is
	// then +Inf and Anomalous is always false until a refit recovers.
	ThresholdUnavailable bool
}

// Observe pushes a measurement vector and tests it against the current
// model, refitting PCA on the configured cadence.
func (s *SlidingDetector) Observe(x []float64) (Result, error) {
	if err := s.window.Push(x); err != nil {
		return Result{}, err
	}
	if !s.window.Full() {
		return Result{}, nil
	}
	var res Result
	s.sinceRefit++
	if s.det == nil || s.sinceRefit >= s.cfg.RefitEvery {
		model, err := Fit(s.window.Matrix())
		if err != nil {
			return Result{}, fmt.Errorf("refit: %w", err)
		}
		det, err := NewDetector(model, s.cfg.Rank, s.cfg.Alpha)
		if errors.Is(err, stats.ErrDegenerate) {
			// No trustworthy threshold on this window's spectrum: keep
			// scoring distances, never alarm, recover on a later refit.
			det, err = NewDetectorThreshold(model, s.cfg.Rank, math.Inf(1))
		}
		if err != nil {
			return Result{}, fmt.Errorf("refit: %w", err)
		}
		s.det = det
		s.sinceRefit = 0
		s.refits++
		res.Refitted = true
	}
	anomalous, dist, err := s.det.IsAnomalous(x)
	if err != nil {
		return Result{}, err
	}
	res.Ready = true
	res.Distance = dist
	res.Threshold = s.det.Threshold()
	res.Anomalous = anomalous
	res.ThresholdUnavailable = math.IsInf(res.Threshold, 1)
	return res, nil
}

// Refits returns how many PCA refits have run.
func (s *SlidingDetector) Refits() int { return s.refits }

// Detector returns the current fitted detector, or nil before the window
// first fills.
func (s *SlidingDetector) Detector() *Detector { return s.det }
