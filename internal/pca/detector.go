package pca

import (
	"fmt"
	"math"

	"streampca/internal/mat"
	"streampca/internal/stats"
)

// Detector tests measurement vectors against a fitted model: it computes the
// anomaly distance d(y) = ‖(I − PPᵀ)y‖ (eq. 5) and compares it with the
// Q-statistic threshold (eq. 6/7).
type Detector struct {
	model     *Model
	rank      int
	alpha     float64
	threshold float64
}

// NewDetector builds a detector from a fitted model, a normal-subspace rank
// r ∈ [0, m], and a false-alarm rate alpha ∈ (0, 1). When the residual
// spectrum admits no Jackson–Mudholkar limit the error wraps
// stats.ErrDegenerate; callers that only need distances (not alarms) can fall
// back to NewDetectorThreshold.
func NewDetector(model *Model, rank int, alpha float64) (*Detector, error) {
	if model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrInput)
	}
	m := model.NumFlows()
	if rank < 0 || rank > m {
		return nil, fmt.Errorf("%w: rank %d with %d flows", ErrRank, rank, m)
	}
	threshold, err := stats.QStatistic(model.Singular, model.WindowLen, rank, alpha)
	if err != nil {
		return nil, fmt.Errorf("q statistic: %w", err)
	}
	return &Detector{model: model, rank: rank, alpha: alpha, threshold: threshold}, nil
}

// NewDetectorThreshold builds a detector with a caller-supplied threshold,
// bypassing the Q statistic. Evaluation harnesses use it with +Inf to keep
// scoring distances when NewDetector fails with stats.ErrDegenerate (with
// +Inf, IsAnomalous never flags).
func NewDetectorThreshold(model *Model, rank int, threshold float64) (*Detector, error) {
	if model == nil {
		return nil, fmt.Errorf("%w: nil model", ErrInput)
	}
	m := model.NumFlows()
	if rank < 0 || rank > m {
		return nil, fmt.Errorf("%w: rank %d with %d flows", ErrRank, rank, m)
	}
	if math.IsNaN(threshold) || threshold < 0 {
		return nil, fmt.Errorf("%w: threshold %v", ErrInput, threshold)
	}
	return &Detector{model: model, rank: rank, alpha: math.NaN(), threshold: threshold}, nil
}

// Model returns the underlying fitted model.
func (d *Detector) Model() *Model { return d.model }

// Rank returns the normal-subspace rank r.
func (d *Detector) Rank() int { return d.rank }

// Alpha returns the configured false-alarm rate.
func (d *Detector) Alpha() float64 { return d.alpha }

// Threshold returns the Q-statistic threshold on the distance scale.
func (d *Detector) Threshold() float64 { return d.threshold }

// Distance returns the anomaly distance of a raw measurement vector x:
// the Euclidean norm of the residual after projecting x − x̄ out of the
// normal subspace (eq. 5 / 21).
func (d *Detector) Distance(x []float64) (float64, error) {
	y, err := d.model.Center(x)
	if err != nil {
		return 0, err
	}
	return d.residualNorm(y)
}

// residualNorm computes ‖(I − PPᵀ)y‖ via the identity
// ‖y‖² − Σ_{j≤r}(v_jᵀy)² (eq. 21), which is cheaper than materializing the
// projector and numerically safe because the subtraction is clamped at 0.
func (d *Detector) residualNorm(y []float64) (float64, error) {
	total := mat.Dot(y, y)
	var normal float64
	for j := 0; j < d.rank; j++ {
		s, err := d.model.Score(y, j)
		if err != nil {
			return 0, err
		}
		normal += s * s
	}
	rem := total - normal
	if rem < 0 {
		rem = 0
	}
	return math.Sqrt(rem), nil
}

// IsAnomalous reports whether x trips the detector, along with the distance
// it measured.
func (d *Detector) IsAnomalous(x []float64) (bool, float64, error) {
	dist, err := d.Distance(x)
	if err != nil {
		return false, 0, err
	}
	return dist > d.threshold, dist, nil
}

// Decompose splits a raw measurement into its normal and anomalous parts
// (eq. 4): x − x̄ = y_normal + y_anomaly with y_normal = PPᵀ(x − x̄).
func (d *Detector) Decompose(x []float64) (normal, anomaly []float64, err error) {
	y, err := d.model.Center(x)
	if err != nil {
		return nil, nil, err
	}
	m := len(y)
	normal = make([]float64, m)
	for j := 0; j < d.rank; j++ {
		s, err := d.model.Score(y, j)
		if err != nil {
			return nil, nil, err
		}
		for i := 0; i < m; i++ {
			normal[i] += s * d.model.Components.At(i, j)
		}
	}
	anomaly = make([]float64, m)
	for i := 0; i < m; i++ {
		anomaly[i] = y[i] - normal[i]
	}
	return normal, anomaly, nil
}
