// Package pca implements the Lakhina-style subspace method for network-wide
// traffic anomaly detection (paper §III): PCA over a sliding window of
// OD-flow measurement vectors, separation of R^m into normal and anomalous
// subspaces, the squared-prediction-error (SPE) anomaly distance, and the
// Jackson–Mudholkar Q-statistic threshold.
//
// This package is the exact (non-streaming) baseline that the sketch-based
// algorithm in internal/core approximates; the evaluation harness uses its
// detections as ground truth, exactly as the paper does.
package pca

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/mat"
)

// Errors returned by the package.
var (
	// ErrInput indicates structurally invalid input.
	ErrInput = errors.New("pca: invalid input")
	// ErrRank indicates an invalid normal-subspace rank.
	ErrRank = errors.New("pca: invalid subspace rank")
)

// Model is a fitted PCA of a window of measurement vectors.
type Model struct {
	// Components is the m×m orthonormal matrix whose column j is the j-th
	// principal component v_j (descending singular value order).
	Components *mat.Matrix
	// Singular holds the singular values η_j of the centered window
	// matrix, descending.
	Singular []float64
	// Means holds the column means removed before the decomposition.
	Means []float64
	// WindowLen is n, the number of rows the model was fitted on.
	WindowLen int
}

// Fit computes the PCA of the n×m measurement matrix x (raw volumes; the
// column means are removed internally and retained in the model). The
// decomposition runs on the m×m Gram matrix YᵀY, whose eigenvalues are η².
func Fit(x *mat.Matrix) (*Model, error) {
	n, m := x.Rows(), x.Cols()
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("%w: %dx%d matrix", ErrInput, n, m)
	}
	if !x.IsFinite() {
		return nil, fmt.Errorf("%w: non-finite measurements", ErrInput)
	}
	y := x.Clone()
	means := y.CenterColumns()
	eig, err := mat.SymEigen(y.Gram())
	if err != nil {
		return nil, fmt.Errorf("eigendecomposition: %w", err)
	}
	sv := make([]float64, m)
	for j, lam := range eig.Values {
		if lam < 0 {
			lam = 0 // numerical noise on a PSD spectrum
		}
		sv[j] = math.Sqrt(lam)
	}
	return &Model{
		Components: eig.Vectors,
		Singular:   sv,
		Means:      means,
		WindowLen:  n,
	}, nil
}

// NumFlows returns m.
func (md *Model) NumFlows() int { return len(md.Means) }

// Center subtracts the model's column means from a raw measurement vector,
// yielding y = x − x̄.
func (md *Model) Center(x []float64) ([]float64, error) {
	if len(x) != len(md.Means) {
		return nil, fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(x), len(md.Means))
	}
	y := make([]float64, len(x))
	for j, v := range x {
		y[j] = v - md.Means[j]
	}
	return y, nil
}

// Score returns the projection of the centered vector onto component j.
func (md *Model) Score(y []float64, j int) (float64, error) {
	m := md.NumFlows()
	if j < 0 || j >= m {
		return 0, fmt.Errorf("%w: component %d of %d", ErrRank, j, m)
	}
	if len(y) != m {
		return 0, fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(y), m)
	}
	var s float64
	for i := 0; i < m; i++ {
		s += md.Components.At(i, j) * y[i]
	}
	return s, nil
}

// ComponentStdDev returns σ_j = η_j/√(n−1), the standard deviation of the
// projections on component j (eq. 9).
func (md *Model) ComponentStdDev(j int) (float64, error) {
	if j < 0 || j >= len(md.Singular) {
		return 0, fmt.Errorf("%w: component %d of %d", ErrRank, j, len(md.Singular))
	}
	return md.Singular[j] / math.Sqrt(float64(md.WindowLen-1)), nil
}

// EnergyRank returns the smallest r such that the first r components retain
// at least frac of the total energy Σ η² (the "90% energy" heuristic used in
// the paper's evaluation discussion).
func (md *Model) EnergyRank(frac float64) (int, error) {
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return 0, fmt.Errorf("%w: energy fraction %v", ErrRank, frac)
	}
	var total float64
	for _, s := range md.Singular {
		total += s * s
	}
	if total == 0 {
		return 0, nil
	}
	var acc float64
	for j, s := range md.Singular {
		acc += s * s
		if acc >= frac*total {
			return j + 1, nil
		}
	}
	return len(md.Singular), nil
}

// ThreeSigmaRank implements the 3σ-heuristic of §IV-D: examine the window's
// projection onto each component in order; the first component whose
// projection contains a value beyond 3σ_j of its (zero) mean starts the
// anomalous subspace, so the normal rank is that component's index. When no
// component trips the test, the rank is m (everything looks normal).
//
// x is the raw window matrix the model was fitted on (or comparable data).
func (md *Model) ThreeSigmaRank(x *mat.Matrix) (int, error) {
	m := md.NumFlows()
	if x.Cols() != m {
		return 0, fmt.Errorf("%w: window with %d columns for %d flows", ErrInput, x.Cols(), m)
	}
	n := x.Rows()
	if n < 2 {
		return 0, fmt.Errorf("%w: window of %d rows", ErrInput, n)
	}
	y := x.Clone()
	y.CenterColumns()
	for j := 0; j < m; j++ {
		sigma, err := md.ComponentStdDev(j)
		if err != nil {
			return 0, err
		}
		if sigma == 0 {
			// Zero-variance components and all after them carry no
			// signal; they belong to the residual subspace.
			return j, nil
		}
		limit := 3 * sigma
		for i := 0; i < n; i++ {
			s, err := md.Score(y.RowView(i), j)
			if err != nil {
				return 0, err
			}
			if math.Abs(s) > limit {
				return j, nil
			}
		}
	}
	return m, nil
}

// ScreeRank implements Cattell's scree test on the singular-value profile:
// it returns the index after the "elbow", found as the point maximizing the
// distance to the line joining the first and last log-eigenvalues.
func ScreeRank(singular []float64) (int, error) {
	m := len(singular)
	if m == 0 {
		return 0, fmt.Errorf("%w: empty spectrum", ErrInput)
	}
	if m <= 2 {
		return 1, nil
	}
	// Work in log-eigenvalue space, flooring zeros.
	logs := make([]float64, m)
	floor := math.Inf(1)
	for _, s := range singular {
		if s > 0 {
			floor = math.Min(floor, s)
		}
	}
	if math.IsInf(floor, 1) {
		return 1, nil // all-zero spectrum
	}
	for i, s := range singular {
		if s <= 0 {
			s = floor * 1e-6
		}
		logs[i] = 2 * math.Log(s)
	}
	x1, y1 := 0.0, logs[0]
	x2, y2 := float64(m-1), logs[m-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return 1, nil
	}
	best, bestDist := 1, -1.0
	for i := 1; i < m-1; i++ {
		// Perpendicular distance from (i, logs[i]) to the chord.
		d := math.Abs(dy*float64(i)-dx*logs[i]+x2*y1-y2*x1) / norm
		if d > bestDist {
			bestDist = d
			best = i
		}
	}
	return best + 1, nil
}
