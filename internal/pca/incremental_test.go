package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestIncrementalMatchesBatchFit(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n, m := 40, 6
	inc, err := NewIncremental(n, m)
	if err != nil {
		t.Fatal(err)
	}
	x := lowRankData(rng, 120, m, 2, 1)
	for i := 0; i < x.Rows(); i++ {
		if err := inc.Push(x.Row(i)); err != nil {
			t.Fatal(err)
		}
		if i < n-1 {
			if inc.Full() {
				t.Fatal("window full too early")
			}
			continue
		}
		if i%13 != 0 {
			continue // compare on a sample of steps
		}
		got, err := inc.Model()
		if err != nil {
			t.Fatal(err)
		}
		// Batch reference over the same window rows.
		lo := i - n + 1
		batch := make([][]float64, 0, n)
		for r := lo; r <= i; r++ {
			batch = append(batch, x.Row(r))
		}
		bm, err := newMatrixFromRowsForTest(batch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Fit(bm)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Singular {
			tol := 1e-6 * math.Max(1, want.Singular[0])
			if math.Abs(got.Singular[j]-want.Singular[j]) > tol {
				t.Fatalf("step %d: η_%d = %v, want %v", i, j, got.Singular[j], want.Singular[j])
			}
		}
		for j := range want.Means {
			if math.Abs(got.Means[j]-want.Means[j]) > 1e-8*math.Max(1, math.Abs(want.Means[j])) {
				t.Fatalf("step %d: mean_%d = %v, want %v", i, j, got.Means[j], want.Means[j])
			}
		}
	}
}

func TestIncrementalLargeMagnitudeStability(t *testing.T) {
	// Volumes around 1e8 with small fluctuations: the reference shift must
	// keep the Gram matrix accurate.
	rng := rand.New(rand.NewSource(9))
	n, m := 64, 4
	inc, err := NewIncremental(n, m)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 3*n)
	for i := range rows {
		row := make([]float64, m)
		for j := range row {
			row[j] = 1e8 + 1e5*rng.NormFloat64()
		}
		rows[i] = row
		if err := inc.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	got, err := inc.Model()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := newMatrixFromRowsForTest(rows[len(rows)-n:])
	if err != nil {
		t.Fatal(err)
	}
	want, err := Fit(bm)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Singular {
		rel := math.Abs(got.Singular[j]-want.Singular[j]) / math.Max(1, want.Singular[0])
		if rel > 1e-5 {
			t.Fatalf("η_%d relative error %v", j, rel)
		}
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(1, 2); !errors.Is(err, ErrInput) {
		t.Fatalf("tiny window: %v", err)
	}
	inc, err := NewIncremental(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Push([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short vector: %v", err)
	}
	if err := inc.Push([]float64{1, math.NaN()}); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN: %v", err)
	}
	if _, err := inc.Model(); !errors.Is(err, ErrInput) {
		t.Fatalf("model before full: %v", err)
	}
	if inc.Len() != 0 {
		t.Fatalf("len = %d after rejected pushes", inc.Len())
	}
}

func TestWindowOldest(t *testing.T) {
	w, err := NewWindow(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Oldest(); !errors.Is(err, ErrInput) {
		t.Fatalf("empty oldest: %v", err)
	}
	_ = w.Push([]float64{1})
	_ = w.Push([]float64{2})
	_ = w.Push([]float64{3})
	got, err := w.Oldest()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("oldest = %v, want 2", got[0])
	}
}
