package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// FlightRecorder is an append-only JSONL audit log for decisions that need
// offline reconstruction — every alarm and every degraded decision gets one
// record (see noc.FlightRecord). It is deliberately dumber than the span
// ring: plain lines on a writer, flushed per record, so the evidence
// survives a crash of the process that produced it.
//
// A nil *FlightRecorder is valid and records nothing.
type FlightRecorder struct {
	mu      sync.Mutex
	w       io.Writer
	c       io.Closer // non-nil when OpenFlightRecorder owns the file
	records atomic.Int64
	errs    atomic.Int64
}

// NewFlightRecorder records onto w (the caller keeps ownership of w).
func NewFlightRecorder(w io.Writer) *FlightRecorder {
	return &FlightRecorder{w: w}
}

// OpenFlightRecorder creates or appends to the JSONL file at path; Close
// releases it.
func OpenFlightRecorder(path string) (*FlightRecorder, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: open flight recorder: %w", err)
	}
	return &FlightRecorder{w: f, c: f}, nil
}

// Record marshals v as one JSON line. Errors are counted (Errs) and
// returned but never panic — losing an audit record must not take down
// detection.
func (f *FlightRecorder) Record(v any) error {
	if f == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		f.errs.Add(1)
		return fmt.Errorf("trace: flight record marshal: %w", err)
	}
	b = append(b, '\n')
	f.mu.Lock()
	_, err = f.w.Write(b)
	f.mu.Unlock()
	if err != nil {
		f.errs.Add(1)
		return fmt.Errorf("trace: flight record write: %w", err)
	}
	f.records.Add(1)
	return nil
}

// Count returns the number of records written successfully.
func (f *FlightRecorder) Count() int64 {
	if f == nil {
		return 0
	}
	return f.records.Load()
}

// Errs returns the number of failed record attempts.
func (f *FlightRecorder) Errs() int64 {
	if f == nil {
		return 0
	}
	return f.errs.Load()
}

// Close releases the underlying file when the recorder owns one.
func (f *FlightRecorder) Close() error {
	if f == nil || f.c == nil {
		return nil
	}
	return f.c.Close()
}
