package trace

import "sync"

// Recorder is a fixed-size ring of finished spans. Every span gets a
// monotonically increasing sequence number, so a client can poll
// incrementally: Snapshot(next) returns only spans recorded after the
// previous call's cursor (/debug/trace?since=N).
type Recorder struct {
	mu   sync.Mutex
	buf  []Record
	next uint64 // total spans ever recorded; rec.Seq of the next add
}

// NewRecorder builds a ring holding the most recent capacity spans.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Recorder{buf: make([]Record, capacity)}
}

// add stamps the record's Seq and stores it, evicting the oldest when full.
func (r *Recorder) add(rec Record) {
	r.mu.Lock()
	rec.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = rec
	r.next++
	r.mu.Unlock()
}

// Len reports how many spans are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Snapshot copies out every retained span with Seq >= since, oldest first,
// and returns the cursor to pass as since next time (the Seq one past the
// newest span ever recorded). Spans older than the ring's capacity are
// gone — a caller that polls slower than spans arrive sees a gap in Seq,
// which is the signal to widen the ring or poll faster.
func (r *Recorder) Snapshot(since uint64) (spans []Record, next uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	oldest := uint64(0)
	if r.next > uint64(len(r.buf)) {
		oldest = r.next - uint64(len(r.buf))
	}
	if since < oldest {
		since = oldest
	}
	for seq := since; seq < r.next; seq++ {
		spans = append(spans, r.buf[seq%uint64(len(r.buf))])
	}
	return spans, r.next
}
