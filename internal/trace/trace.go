// Package trace is the stdlib-only interval-lineage tracing layer: one
// trace per measurement interval, followed from NetFlow ingest through the
// monitor's sketch update, the NOC's §IV-C fetch/retrain protocol, and the
// final detection decision.
//
// The design exploits the system's shared clock: every component already
// agrees on the interval index t, so the trace ID is *derived* from t
// (ForInterval) instead of propagated — ingest, monitor and NOC join the
// same trace without a handshake, and per-trace sampling decisions agree
// fleet-wide for free. A TraceContext still crosses the wire on transport
// envelopes so request/response spans (the sketch pull) can parent
// correctly across processes.
//
// Cost model: a nil *Tracer (tracing disabled) makes every call site a nil
// check — see BenchmarkTracedSketchUpdate. An enabled tracer allocates one
// Record per sampled span and appends it to a fixed-size ring (Recorder)
// at End; unsampled traces cost one hash+modulo in Start.
package trace

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ID identifies one trace — one measurement interval's journey through the
// system. IDs render as 16-digit hex strings in JSON so they survive
// JavaScript number precision and grep alike.
type ID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the SpanID as fixed-width hex.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON renders the ID as a hex string.
func (id ID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// MarshalJSON renders the SpanID as a hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }

// UnmarshalJSON parses the hex-string rendering back (flight-record and
// /debug/trace consumers round-trip IDs).
func (id *ID) UnmarshalJSON(b []byte) error {
	v, err := parseHexID(b)
	*id = ID(v)
	return err
}

// UnmarshalJSON parses the hex-string rendering back.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	v, err := parseHexID(b)
	*id = SpanID(v)
	return err
}

func parseHexID(b []byte) (uint64, error) {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return 0, fmt.Errorf("trace: id not a JSON string: %w", err)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return v, nil
}

// mix64 is the splitmix64 finalizer: a cheap bijective hash whose output
// bits are uniform enough that (id % sample) is an unbiased trace sampler.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ForInterval derives the trace ID for measurement interval t. Every
// component calls this independently, so spans emitted by ingest, monitor
// and NOC for the same interval share a trace without any propagation, and
// deterministic sampling (Tracer.Sampled) agrees across processes.
func ForInterval(t int64) ID { return ID(mix64(uint64(t))) }

// Attr is one key/value annotation on a span or event. Values are kept as
// any for JSON flexibility; use the I/F/S/B constructors.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// I constructs an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// F constructs a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// S constructs a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Value: v} }

// B constructs a boolean attribute.
func B(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// Event is a point-in-time annotation within a span (a fetch retry, a
// breaker opening, a degraded fallback). At is the offset from the span's
// start on the monotonic clock.
type Event struct {
	At    time.Duration `json:"at_ns"`
	Kind  string        `json:"kind"`
	Attrs []Attr        `json:"attrs,omitempty"`
}

// Record is one finished span as stored in the Recorder ring and served by
// /debug/trace. Seq is the recorder-assigned cursor position.
type Record struct {
	Seq       uint64        `json:"seq"`
	Trace     ID            `json:"trace"`
	Span      SpanID        `json:"span"`
	Parent    SpanID        `json:"parent,omitempty"`
	Component string        `json:"component"`
	Name      string        `json:"name"`
	Start     int64         `json:"start_unix_ns"`
	Duration  time.Duration `json:"duration_ns"`
	Attrs     []Attr        `json:"attrs,omitempty"`
	Events    []Event       `json:"events,omitempty"`
}

// Config parameterizes a Tracer.
type Config struct {
	// Component names the emitting process ("ingest", "monitor-3", "noc")
	// and is stamped on every span.
	Component string
	// Capacity is the span ring size; default 4096. Old spans are evicted
	// FIFO — the recorder is a flight buffer, not an archive.
	Capacity int
	// Sample keeps 1 trace in Sample (by trace ID, so all components keep
	// the same traces); values ≤ 1 keep everything.
	Sample int
}

// Tracer creates spans. A nil *Tracer is valid and means "disabled": Start
// returns a nil *Span and every span method is a no-op, so call sites need
// no conditionals.
type Tracer struct {
	component string
	sample    uint64
	rec       *Recorder
	nextSpan  atomic.Uint64
	spanSeed  uint64
}

// New builds an enabled tracer recording into a fresh ring.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	sample := uint64(cfg.Sample)
	if cfg.Sample <= 1 {
		sample = 1
	}
	t := &Tracer{
		component: cfg.Component,
		sample:    sample,
		rec:       NewRecorder(cfg.Capacity),
	}
	// Seed span IDs from the component name so two processes' spans rarely
	// collide even though allocation is a plain counter.
	var h uint64 = 1469598103934665603 // FNV-1a offset basis
	for i := 0; i < len(cfg.Component); i++ {
		h ^= uint64(cfg.Component[i])
		h *= 1099511628211
	}
	t.spanSeed = h
	return t
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// Recorder exposes the span ring (for /debug/trace); nil when disabled.
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Sampled reports whether trace id is kept by this tracer's sampling
// policy. Deterministic in id, so every component with the same Sample
// keeps the same traces.
func (t *Tracer) Sampled(id ID) bool {
	if t == nil {
		return false
	}
	return t.sample <= 1 || uint64(id)%t.sample == 0
}

// newSpanID allocates a process-unique span ID.
func (t *Tracer) newSpanID() SpanID {
	return SpanID(mix64(t.spanSeed + t.nextSpan.Add(1)))
}

// Start opens a span on trace id. parent is the causally preceding span (0
// for a root). Returns nil — a valid no-op span — when the tracer is
// disabled or the trace is not sampled.
func (t *Tracer) Start(id ID, parent SpanID, name string, attrs ...Attr) *Span {
	if !t.Sampled(id) {
		return nil
	}
	return &Span{
		tracer: t,
		start:  time.Now(),
		rec: Record{
			Trace:     id,
			Span:      t.newSpanID(),
			Parent:    parent,
			Component: t.component,
			Name:      name,
			Attrs:     attrs,
		},
	}
}

// Span is one in-progress operation within a trace. All methods are
// nil-safe; a nil span (disabled tracer or unsampled trace) costs one
// branch per call.
type Span struct {
	tracer *Tracer
	start  time.Time

	mu    sync.Mutex
	ended bool
	rec   Record
}

// ID returns the span's ID (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.rec.Span
}

// Trace returns the span's trace ID (0 for a nil span).
func (s *Span) Trace() ID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// Event appends a point-in-time event, stamped with the monotonic offset
// from the span's start.
func (s *Span) Event(kind string, attrs ...Attr) {
	if s == nil {
		return
	}
	at := time.Since(s.start)
	s.mu.Lock()
	if !s.ended {
		s.rec.Events = append(s.rec.Events, Event{At: at, Kind: kind, Attrs: attrs})
	}
	s.mu.Unlock()
}

// SetAttr appends attributes to the span itself.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.rec.Attrs = append(s.rec.Attrs, attrs...)
	}
	s.mu.Unlock()
}

// End finishes the span and pushes it into the tracer's ring. The duration
// comes from the monotonic clock. Multiple Ends are harmless; only the
// first records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.Start = s.start.UnixNano()
	s.rec.Duration = time.Since(s.start)
	rec := s.rec
	s.mu.Unlock()
	s.tracer.rec.add(rec)
}
