package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestForIntervalDeterministicAndDistinct(t *testing.T) {
	seen := make(map[ID]int64)
	for i := int64(0); i < 10_000; i++ {
		id := ForInterval(i)
		if id != ForInterval(i) {
			t.Fatalf("ForInterval(%d) not deterministic", i)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("ForInterval collision: intervals %d and %d -> %v", prev, i, id)
		}
		seen[id] = i
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Sampled(ForInterval(1)) {
		t.Fatal("nil tracer samples")
	}
	if tr.Recorder() != nil {
		t.Fatal("nil tracer has a recorder")
	}
	sp := tr.Start(ForInterval(1), 0, "noop")
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every span method must be callable on nil.
	sp.Event("e", I("k", 1))
	sp.SetAttr(S("k", "v"))
	if sp.ID() != 0 || sp.Trace() != 0 {
		t.Fatal("nil span has non-zero ids")
	}
	sp.End()

	var fr *FlightRecorder
	if err := fr.Record(struct{}{}); err != nil {
		t.Fatalf("nil flight recorder: %v", err)
	}
	if fr.Count() != 0 || fr.Errs() != 0 {
		t.Fatal("nil flight recorder has counts")
	}
	if err := fr.Close(); err != nil {
		t.Fatalf("nil flight recorder close: %v", err)
	}

	var rec *Recorder
	if spans, next := rec.Snapshot(0); spans != nil || next != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
}

func TestSpanLifecycleAndRecord(t *testing.T) {
	tr := New(Config{Component: "test", Capacity: 16})
	id := ForInterval(7)
	sp := tr.Start(id, 0, "parent", I("interval", 7))
	child := tr.Start(id, sp.ID(), "child")
	child.Event("retry", I("round", 1))
	child.SetAttr(B("ok", true))
	child.End()
	sp.End()
	sp.End() // double End must not duplicate

	spans, next := tr.Recorder().Snapshot(0)
	if len(spans) != 2 || next != 2 {
		t.Fatalf("got %d spans next=%d, want 2/2", len(spans), next)
	}
	// Ring order is End order: child first.
	c, p := spans[0], spans[1]
	if c.Name != "child" || p.Name != "parent" {
		t.Fatalf("span order: %q, %q", c.Name, p.Name)
	}
	if c.Trace != id || p.Trace != id {
		t.Fatalf("trace ids differ: %v %v want %v", c.Trace, p.Trace, id)
	}
	if c.Parent != p.Span {
		t.Fatalf("child parent %v, want %v", c.Parent, p.Span)
	}
	if c.Component != "test" {
		t.Fatalf("component %q", c.Component)
	}
	if len(c.Events) != 1 || c.Events[0].Kind != "retry" {
		t.Fatalf("child events %+v", c.Events)
	}
	if len(c.Attrs) != 1 || c.Attrs[0].Key != "ok" {
		t.Fatalf("child attrs %+v", c.Attrs)
	}
	if c.Duration < 0 || c.Start == 0 {
		t.Fatalf("timestamps: start=%d dur=%d", c.Start, c.Duration)
	}
	// After End, mutations are dropped, not raced.
	child2 := tr.Start(id, 0, "x")
	child2.End()
	child2.Event("late")
	child2.SetAttr(I("late", 1))
	spans, _ = tr.Recorder().Snapshot(0)
	last := spans[len(spans)-1]
	if len(last.Events) != 0 || len(last.Attrs) != 0 {
		t.Fatalf("post-End mutation recorded: %+v", last)
	}
}

func TestSamplingDeterministicAcrossTracers(t *testing.T) {
	a := New(Config{Component: "a", Sample: 4})
	b := New(Config{Component: "b", Sample: 4})
	kept := 0
	for i := int64(0); i < 4000; i++ {
		id := ForInterval(i)
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("tracers disagree on interval %d", i)
		}
		if a.Sampled(id) {
			kept++
		}
		if sp := a.Start(id, 0, "s"); a.Sampled(id) != (sp != nil) {
			t.Fatalf("Start disagrees with Sampled for interval %d", i)
		}
	}
	// Expect ~1000 of 4000; splitmix64 is uniform enough for wide bounds.
	if kept < 800 || kept > 1200 {
		t.Fatalf("sample=4 kept %d of 4000", kept)
	}
	all := New(Config{Component: "c"}) // Sample 0 -> keep all
	for i := int64(0); i < 100; i++ {
		if !all.Sampled(ForInterval(i)) {
			t.Fatalf("sample<=1 dropped interval %d", i)
		}
	}
}

func TestRecorderRingEvictionAndCursor(t *testing.T) {
	tr := New(Config{Component: "ring", Capacity: 8})
	for i := int64(0); i < 20; i++ {
		sp := tr.Start(ForInterval(i), 0, "s", I("i", i))
		sp.End()
	}
	rec := tr.Recorder()
	if rec.Len() != 8 {
		t.Fatalf("Len=%d want 8", rec.Len())
	}
	spans, next := rec.Snapshot(0)
	if next != 20 {
		t.Fatalf("next=%d want 20", next)
	}
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := uint64(12 + i); s.Seq != want {
			t.Fatalf("span %d seq=%d want %d", i, s.Seq, want)
		}
	}
	// Incremental poll: since=18 returns the last two only.
	spans, next = rec.Snapshot(18)
	if len(spans) != 2 || spans[0].Seq != 18 || next != 20 {
		t.Fatalf("since=18: %d spans first=%v next=%d", len(spans), spans, next)
	}
	// A cursor at the frontier returns nothing.
	spans, next = rec.Snapshot(next)
	if len(spans) != 0 || next != 20 {
		t.Fatalf("frontier poll: %d spans next=%d", len(spans), next)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	tr := New(Config{Component: "conc", Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 200; i++ {
				sp := tr.Start(ForInterval(i), 0, "s")
				sp.Event("e", I("g", int64(g)))
				sp.End()
			}
		}(g)
	}
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		var cursor uint64
		for i := 0; i < 100; i++ {
			var spans []Record
			spans, cursor = tr.Recorder().Snapshot(cursor)
			for j := 1; j < len(spans); j++ {
				if spans[j].Seq != spans[j-1].Seq+1 {
					t.Errorf("non-contiguous snapshot: %d then %d", spans[j-1].Seq, spans[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-readDone
	if _, next := tr.Recorder().Snapshot(0); next != 8*200 {
		t.Fatalf("recorded %d spans, want %d", next, 8*200)
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	var buf bytes.Buffer
	fr := NewFlightRecorder(&buf)
	type rec struct {
		Trace ID      `json:"trace"`
		SPE   float64 `json:"spe"`
	}
	for i := int64(0); i < 3; i++ {
		if err := fr.Record(rec{Trace: ForInterval(i), SPE: float64(i) + 0.5}); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if fr.Count() != 3 || fr.Errs() != 0 {
		t.Fatalf("count=%d errs=%d", fr.Count(), fr.Errs())
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var got rec
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		// Trace IDs round-trip as hex strings.
		if !strings.Contains(sc.Text(), `"trace":"`) {
			t.Fatalf("trace id not hex-encoded: %s", sc.Text())
		}
		lines++
	}
	if lines != 3 {
		t.Fatalf("got %d JSONL lines, want 3", lines)
	}
	// Unmarshalable values are counted, not fatal.
	if err := fr.Record(func() {}); err == nil {
		t.Fatal("expected marshal error")
	}
	if fr.Errs() != 1 {
		t.Fatalf("errs=%d want 1", fr.Errs())
	}
}

func TestOpenFlightRecorderAppends(t *testing.T) {
	path := t.TempDir() + "/flight.jsonl"
	for i := 0; i < 2; i++ {
		fr, err := OpenFlightRecorder(path)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if err := fr.Record(map[string]int{"run": i}); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if err := fr.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(b), "\n"); n != 2 {
		t.Fatalf("appended file has %d lines, want 2:\n%s", n, b)
	}
}
