package flow

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func buildTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable()
	entries := []struct {
		prefix string
		r      RouterID
	}{
		{"10.0.0.0/8", 0},
		{"10.1.0.0/16", 1}, // more specific than 10/8
		{"192.168.0.0/16", 2},
		{"192.168.7.1/32", 3}, // host route
	}
	for _, e := range entries {
		if err := tbl.Insert(mustPrefix(t, e.prefix), e.r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableLongestPrefixMatch(t *testing.T) {
	tbl := buildTable(t)
	tests := []struct {
		addr string
		want RouterID
	}{
		{"10.2.3.4", 0},
		{"10.1.9.9", 1},
		{"192.168.1.1", 2},
		{"192.168.7.1", 3},
	}
	for _, tt := range tests {
		got, err := tbl.Lookup(mustAddr(t, tt.addr))
		if err != nil {
			t.Fatalf("lookup %s: %v", tt.addr, err)
		}
		if got != tt.want {
			t.Fatalf("lookup %s = %d, want %d", tt.addr, got, tt.want)
		}
	}
}

func TestTableLookupMiss(t *testing.T) {
	tbl := buildTable(t)
	if _, err := tbl.Lookup(mustAddr(t, "8.8.8.8")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("miss: %v", err)
	}
	if _, err := tbl.Lookup(mustAddr(t, "::1")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("ipv6: %v", err)
	}
}

func TestTableInsertValidation(t *testing.T) {
	tbl := NewTable()
	v6 := netip.MustParsePrefix("2001:db8::/32")
	if err := tbl.Insert(v6, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("ipv6 prefix: %v", err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/8"), -1); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative router: %v", err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	// Replacement keeps the count.
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/8"), 2); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len after replace = %d", tbl.Len())
	}
	got, err := tbl.Lookup(mustAddr(t, "10.0.0.1"))
	if err != nil || got != 2 {
		t.Fatalf("lookup after replace = %d, %v", got, err)
	}
}

func TestTableDefaultRoute(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(mustPrefix(t, "0.0.0.0/0"), 7); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Lookup(mustAddr(t, "203.0.113.9"))
	if err != nil || got != 7 {
		t.Fatalf("default route lookup = %d, %v", got, err)
	}
}

func TestNewAggregatorValidation(t *testing.T) {
	tbl := buildTable(t)
	if _, err := NewAggregator(nil, 4, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil table: %v", err)
	}
	if _, err := NewAggregator(tbl, 0, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero routers: %v", err)
	}
	if _, err := NewAggregator(tbl, 4, []string{"A"}); !errors.Is(err, ErrConfig) {
		t.Fatalf("short names: %v", err)
	}
}

func TestAggregatorFlowID(t *testing.T) {
	tbl := buildTable(t)
	agg, err := NewAggregator(tbl, 4, []string{"A", "B", "C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumFlows() != 16 {
		t.Fatalf("NumFlows = %d", agg.NumFlows())
	}
	p := Packet{Src: mustAddr(t, "10.1.0.5"), Dst: mustAddr(t, "192.168.1.1"), Size: 100}
	id, err := agg.FlowID(p)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1*4+2 {
		t.Fatalf("flow id = %d, want 6", id)
	}
	origin, dest, err := agg.ODPair(id)
	if err != nil || origin != 1 || dest != 2 {
		t.Fatalf("ODPair = (%d,%d), %v", origin, dest, err)
	}
	if got := agg.FlowName(id); got != "B→C" {
		t.Fatalf("FlowName = %q", got)
	}
	// Unroutable source.
	bad := Packet{Src: mustAddr(t, "8.8.8.8"), Dst: mustAddr(t, "10.0.0.1")}
	if _, err := agg.FlowID(bad); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("unroutable: %v", err)
	}
}

func TestAggregatorODPairErrors(t *testing.T) {
	agg, _ := NewAggregator(buildTable(t), 3, nil)
	if _, _, err := agg.ODPair(-1); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative: %v", err)
	}
	if _, _, err := agg.ODPair(9); !errors.Is(err, ErrConfig) {
		t.Fatalf("too large: %v", err)
	}
	if got := agg.FlowName(99); got != "invalid(99)" {
		t.Fatalf("FlowName invalid = %q", got)
	}
	if got := agg.FlowName(4); got != "R1→R1" {
		t.Fatalf("numeric FlowName = %q", got)
	}
}

func TestFlowIndexRoundTrip(t *testing.T) {
	agg, _ := NewAggregator(buildTable(t), 5, nil)
	for o := RouterID(0); o < 5; o++ {
		for d := RouterID(0); d < 5; d++ {
			id, err := agg.FlowIndex(o, d)
			if err != nil {
				t.Fatal(err)
			}
			gotO, gotD, err := agg.ODPair(id)
			if err != nil || gotO != o || gotD != d {
				t.Fatalf("round trip (%d,%d) → %d → (%d,%d)", o, d, id, gotO, gotD)
			}
		}
	}
	if _, err := agg.FlowIndex(5, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad origin: %v", err)
	}
}

// Property: FlowIndex and ODPair are inverse bijections over valid ranges.
func TestQuickFlowIndexBijection(t *testing.T) {
	agg, err := NewAggregator(NewTable(), 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(rawO, rawD uint8) bool {
		o := RouterID(int(rawO) % 9)
		d := RouterID(int(rawD) % 9)
		id, err := agg.FlowIndex(o, d)
		if err != nil {
			return false
		}
		gotO, gotD, err := agg.ODPair(id)
		return err == nil && gotO == o && gotD == d && id >= 0 && id < agg.NumFlows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
