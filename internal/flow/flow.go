// Package flow implements the aggregation layer of Fig. 2/4: it maps raw
// packets (source address, destination address, size) to origin–destination
// (OD) flow indices. In the paper the mapping comes from BGP and ISIS feeds;
// here a static longest-prefix-match table assigns each address to its
// ingress/egress router, which preserves the aggregation semantics without a
// live routing plane (see DESIGN.md §5).
package flow

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
)

// Errors returned by the package.
var (
	// ErrNoRoute indicates an address matched by no prefix in the table.
	ErrNoRoute = errors.New("flow: no matching prefix")
	// ErrConfig indicates an invalid table or aggregator configuration.
	ErrConfig = errors.New("flow: invalid configuration")
)

// Packet is the minimal header view the aggregation layer needs.
type Packet struct {
	Src  netip.Addr
	Dst  netip.Addr
	Size int
}

// RouterID identifies a router in the monitored network, 0-based.
type RouterID int

// Table maps IP prefixes to the router that originates/terminates them —
// the stand-in for the BGP+ISIS view used by the paper's aggregation.
//
// Lookups are longest-prefix-match over IPv4 prefixes.
type Table struct {
	// byLen[p] maps the masked 32-bit prefix value to a router, for prefix
	// length p.
	byLen [33]map[uint32]RouterID
	size  int
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{}
}

// Len returns the number of installed prefixes.
func (t *Table) Len() int { return t.size }

// Insert installs an IPv4 prefix → router mapping, replacing any previous
// entry for the same prefix.
func (t *Table) Insert(prefix netip.Prefix, r RouterID) error {
	if !prefix.IsValid() || !prefix.Addr().Is4() {
		return fmt.Errorf("%w: prefix %v must be valid IPv4", ErrConfig, prefix)
	}
	if r < 0 {
		return fmt.Errorf("%w: negative router id %d", ErrConfig, r)
	}
	bits := prefix.Bits()
	a4 := prefix.Masked().Addr().As4()
	key := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	if t.byLen[bits] == nil {
		t.byLen[bits] = make(map[uint32]RouterID)
	}
	if _, exists := t.byLen[bits][key]; !exists {
		t.size++
	}
	t.byLen[bits][key] = r
	return nil
}

// Lookup returns the router owning addr by longest-prefix match.
func (t *Table) Lookup(addr netip.Addr) (RouterID, error) {
	if !addr.Is4() {
		return 0, fmt.Errorf("%w: %v is not IPv4", ErrNoRoute, addr)
	}
	a4 := addr.As4()
	key := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	for bits := 32; bits >= 0; bits-- {
		m := t.byLen[bits]
		if m == nil {
			continue
		}
		masked := key
		if bits < 32 {
			masked = key &^ (1<<(32-uint(bits)) - 1)
		}
		if r, ok := m[masked]; ok {
			return r, nil
		}
	}
	return 0, fmt.Errorf("%w: %v", ErrNoRoute, addr)
}

// Aggregator maps packets to OD-flow indices using a routing table.
type Aggregator struct {
	table      *Table
	numRouters int
	names      []string
}

// NewAggregator builds an aggregator over numRouters routers. names is
// optional; when given it must have numRouters entries and is used by
// FlowName.
func NewAggregator(table *Table, numRouters int, names []string) (*Aggregator, error) {
	if table == nil {
		return nil, fmt.Errorf("%w: nil table", ErrConfig)
	}
	if numRouters <= 0 {
		return nil, fmt.Errorf("%w: %d routers", ErrConfig, numRouters)
	}
	if names != nil && len(names) != numRouters {
		return nil, fmt.Errorf("%w: %d names for %d routers", ErrConfig, len(names), numRouters)
	}
	copied := make([]string, len(names))
	copy(copied, names)
	return &Aggregator{table: table, numRouters: numRouters, names: copied}, nil
}

// NumFlows returns the number of OD flows (numRouters², including self
// pairs, matching the Abilene OD-flow convention).
func (a *Aggregator) NumFlows() int { return a.numRouters * a.numRouters }

// NumRouters returns the number of routers.
func (a *Aggregator) NumRouters() int { return a.numRouters }

// FlowID maps a packet to its OD flow index origin·numRouters + destination.
func (a *Aggregator) FlowID(p Packet) (int, error) {
	origin, err := a.table.Lookup(p.Src)
	if err != nil {
		return 0, fmt.Errorf("origin of %v: %w", p.Src, err)
	}
	dest, err := a.table.Lookup(p.Dst)
	if err != nil {
		return 0, fmt.Errorf("destination of %v: %w", p.Dst, err)
	}
	if int(origin) >= a.numRouters || int(dest) >= a.numRouters {
		return 0, fmt.Errorf("%w: router id out of range (origin %d, dest %d, routers %d)",
			ErrConfig, origin, dest, a.numRouters)
	}
	return int(origin)*a.numRouters + int(dest), nil
}

// ODPair returns the (origin, destination) routers of a flow index.
func (a *Aggregator) ODPair(flowID int) (origin, dest RouterID, err error) {
	if flowID < 0 || flowID >= a.NumFlows() {
		return 0, 0, fmt.Errorf("%w: flow %d of %d", ErrConfig, flowID, a.NumFlows())
	}
	return RouterID(flowID / a.numRouters), RouterID(flowID % a.numRouters), nil
}

// FlowName renders a flow index as "ORIGIN→DEST" using the configured router
// names, or numeric ids when names were not provided.
func (a *Aggregator) FlowName(flowID int) string {
	origin, dest, err := a.ODPair(flowID)
	if err != nil {
		return "invalid(" + strconv.Itoa(flowID) + ")"
	}
	name := func(r RouterID) string {
		if len(a.names) > 0 {
			return a.names[r]
		}
		return "R" + strconv.Itoa(int(r))
	}
	return name(origin) + "→" + name(dest)
}

// FlowIndex returns the flow id for an explicit OD router pair.
func (a *Aggregator) FlowIndex(origin, dest RouterID) (int, error) {
	if origin < 0 || int(origin) >= a.numRouters || dest < 0 || int(dest) >= a.numRouters {
		return 0, fmt.Errorf("%w: od pair (%d,%d) with %d routers", ErrConfig, origin, dest, a.numRouters)
	}
	return int(origin)*a.numRouters + int(dest), nil
}
