package flow

import (
	"errors"
	"net/netip"
	"testing"
)

// TestTableNestedPrefixChain installs a full nesting chain over one address
// range and checks that every probe lands on the most specific covering
// prefix, including exact mask-boundary addresses.
func TestTableNestedPrefixChain(t *testing.T) {
	tbl := NewTable()
	chain := []struct {
		prefix string
		r      RouterID
	}{
		{"0.0.0.0/0", 0},
		{"10.0.0.0/8", 1},
		{"10.16.0.0/12", 2},
		{"10.16.0.0/16", 3},
		{"10.16.32.0/24", 4},
		{"10.16.32.16/28", 5},
		{"10.16.32.17/32", 6},
	}
	for _, e := range chain {
		if err := tbl.Insert(mustPrefix(t, e.prefix), e.r); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		addr string
		want RouterID
	}{
		{"203.0.113.1", 0},   // only the default route covers
		{"10.200.0.1", 1},    // inside /8, outside /12
		{"10.31.255.255", 2}, // last address of the /12, outside the /16
		{"10.16.99.1", 3},    // inside /16, outside the /24
		{"10.16.32.1", 4},    // inside /24, below the /28
		{"10.16.32.16", 5},   // first address of the /28
		{"10.16.32.31", 5},   // last address of the /28
		{"10.16.32.32", 4},   // one past the /28 falls back to the /24
		{"10.16.32.17", 6},   // the host route wins over every ancestor
	}
	for _, tt := range tests {
		got, err := tbl.Lookup(mustAddr(t, tt.addr))
		if err != nil {
			t.Fatalf("lookup %s: %v", tt.addr, err)
		}
		if got != tt.want {
			t.Errorf("lookup %s = router %d, want %d", tt.addr, got, tt.want)
		}
	}
}

// TestTableOverlappingSiblings checks that two same-length siblings and a
// shorter covering prefix route disjointly: the sibling boundary must not
// leak (10.1.255.255 vs 10.2.0.0) and addresses under neither sibling fall
// to the covering prefix.
func TestTableOverlappingSiblings(t *testing.T) {
	tbl := NewTable()
	for _, e := range []struct {
		prefix string
		r      RouterID
	}{
		{"10.0.0.0/8", 9},
		{"10.1.0.0/16", 1},
		{"10.2.0.0/16", 2},
		{"10.1.128.0/17", 3}, // splits sibling 1
	} {
		if err := tbl.Insert(mustPrefix(t, e.prefix), e.r); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		addr string
		want RouterID
	}{
		{"10.1.0.1", 1},
		{"10.1.127.255", 1}, // last address below the /17 split
		{"10.1.128.0", 3},   // first address of the /17
		{"10.1.255.255", 3},
		{"10.2.0.0", 2}, // sibling boundary does not leak
		{"10.3.0.0", 9}, // covered by neither sibling
	}
	for _, tt := range tests {
		got, err := tbl.Lookup(mustAddr(t, tt.addr))
		if err != nil {
			t.Fatalf("lookup %s: %v", tt.addr, err)
		}
		if got != tt.want {
			t.Errorf("lookup %s = router %d, want %d", tt.addr, got, tt.want)
		}
	}
}

// TestTableNonCanonicalInsert checks that a prefix inserted with host bits
// set is masked canonically, matching the whole range rather than only the
// literal address.
func TestTableNonCanonicalInsert(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(mustPrefix(t, "10.9.8.7/16"), 4); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []string{"10.9.0.1", "10.9.8.7", "10.9.255.254"} {
		got, err := tbl.Lookup(mustAddr(t, addr))
		if err != nil || got != 4 {
			t.Fatalf("lookup %s = %d, %v; want 4 via masked insert", addr, got, err)
		}
	}
	if _, err := tbl.Lookup(mustAddr(t, "10.10.0.1")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("outside masked range: %v", err)
	}
}

// TestAggregatorTableMiss covers FlowID on packets whose source,
// destination, or both sides match no prefix: each must surface ErrNoRoute,
// never a bogus flow id.
func TestAggregatorTableMiss(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/16"), 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.1.0.0/16"), 1); err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(tbl, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	routed := mustAddr(t, "10.0.0.1")
	stray := mustAddr(t, "172.16.0.1")
	v6 := netip.MustParseAddr("2001:db8::1")
	cases := map[string]Packet{
		"src miss":   {Src: stray, Dst: routed},
		"dst miss":   {Src: routed, Dst: stray},
		"both miss":  {Src: stray, Dst: stray},
		"src ipv6":   {Src: v6, Dst: routed},
		"dst ipv6":   {Src: routed, Dst: v6},
		"zero value": {},
	}
	for name, p := range cases {
		if _, err := agg.FlowID(p); !errors.Is(err, ErrNoRoute) {
			t.Errorf("%s: got %v, want ErrNoRoute", name, err)
		}
	}
	// Sanity: a fully routed packet still maps.
	id, err := agg.FlowID(Packet{Src: routed, Dst: mustAddr(t, "10.1.0.1")})
	if err != nil || id != 1 {
		t.Fatalf("routed packet: id=%d err=%v, want id=1", id, err)
	}
}

// TestAggregatorRouterBeyondRange covers the config-mismatch case: the
// table routes to a router id outside the aggregator's range.
func TestAggregatorRouterBeyondRange(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Insert(mustPrefix(t, "10.0.0.0/16"), 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(mustPrefix(t, "10.5.0.0/16"), 5); err != nil {
		t.Fatal(err)
	}
	agg, err := NewAggregator(tbl, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.FlowID(Packet{Src: mustAddr(t, "10.0.0.1"), Dst: mustAddr(t, "10.5.0.1")}); !errors.Is(err, ErrConfig) {
		t.Fatalf("out-of-range router: %v", err)
	}
}
