package obs

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the diagnostics HTTP endpoint: /metrics (Prometheus text
// format), /healthz (JSON component status) and /debug/pprof/*. It binds
// its own mux so importing net/http/pprof's default-mux side effects is
// avoided and two services in one process can each run their own server.
type Server struct {
	ln  net.Listener
	srv *http.Server
	log *slog.Logger
}

// StartServer listens on addr (e.g. "127.0.0.1:9090", port 0 for ephemeral)
// and serves diagnostics for reg and health in a background goroutine.
// A nil reg or health disables the respective endpoint with 404; log may be
// nil.
func StartServer(addr string, reg *Registry, health *Health, log *slog.Logger) (*Server, error) {
	if log == nil {
		log = Nop()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				log.Warn("metrics write failed", "err", err)
			}
		})
	}
	if health != nil {
		mux.Handle("/healthz", health)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
		log: log,
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Warn("diagnostics server stopped", "err", err)
		}
	}()
	log.Info("diagnostics server listening", "addr", ln.Addr().String())
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and interrupts in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }
