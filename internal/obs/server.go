package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"streampca/internal/trace"
)

// Server is the diagnostics HTTP endpoint: /metrics (Prometheus text
// format), /healthz (JSON component status), /debug/trace (span ring, when
// tracing is enabled) and /debug/pprof/*. It binds its own mux so importing
// net/http/pprof's default-mux side effects is avoided and two services in
// one process can each run their own server.
type Server struct {
	ln  net.Listener
	srv *http.Server
	log *slog.Logger
}

// StartServer listens on addr (e.g. "127.0.0.1:9090", port 0 for ephemeral)
// and serves diagnostics for reg and health in a background goroutine.
// A nil reg or health disables the respective endpoint with 404; log may be
// nil.
func StartServer(addr string, reg *Registry, health *Health, log *slog.Logger) (*Server, error) {
	return StartServerWith(addr, reg, health, nil, log)
}

// traceResponse is the /debug/trace JSON body: the retained spans with
// seq >= since, plus the cursor to pass as since on the next poll.
type traceResponse struct {
	Next  uint64         `json:"next"`
	Spans []trace.Record `json:"spans"`
}

// StartServerWith is StartServer plus a span ring: when spans is non-nil,
// /debug/trace serves its contents as JSON. The endpoint is a cursor poll —
// GET /debug/trace?since=N returns spans with sequence >= N and the next
// cursor, so a scraper can tail the ring without re-reading it.
func StartServerWith(addr string, reg *Registry, health *Health, spans *trace.Recorder, log *slog.Logger) (*Server, error) {
	if log == nil {
		log = Nop()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	if reg != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				log.Warn("metrics write failed", "err", err)
			}
		})
	}
	if health != nil {
		mux.Handle("/healthz", health)
	}
	if spans != nil {
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			var since uint64
			if q := r.URL.Query().Get("since"); q != "" {
				v, err := strconv.ParseUint(q, 10, 64)
				if err != nil {
					http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
					return
				}
				since = v
			}
			recs, next := spans.Snapshot(since)
			if recs == nil {
				recs = []trace.Record{} // render [] rather than null
			}
			w.Header().Set("Content-Type", "application/json")
			if err := json.NewEncoder(w).Encode(traceResponse{Next: next, Spans: recs}); err != nil {
				log.Warn("trace write failed", "err", err)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
		log: log,
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Warn("diagnostics server stopped", "err", err)
		}
	}()
	log.Info("diagnostics server listening", "addr", ln.Addr().String())
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and interrupts in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }
