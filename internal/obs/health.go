package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Status is a component health state. Worst-of aggregation: one Down
// component makes the whole process Down.
type Status string

// Health states, from best to worst.
const (
	StatusOK       Status = "ok"
	StatusDegraded Status = "degraded"
	StatusDown     Status = "down"
)

func (s Status) rank() int {
	switch s {
	case StatusOK:
		return 0
	case StatusDegraded:
		return 1
	default:
		return 2
	}
}

// ComponentHealth is one component's reported state.
type ComponentHealth struct {
	Status Status `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// Health tracks per-component status for the /healthz endpoint.
type Health struct {
	mu         sync.Mutex
	components map[string]ComponentHealth
}

// NewHealth returns an empty health tracker.
func NewHealth() *Health {
	return &Health{components: make(map[string]ComponentHealth)}
}

// Set records component's current state.
func (h *Health) Set(component string, s Status, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.components[component] = ComponentHealth{Status: s, Detail: detail}
}

// Snapshot returns the aggregate status and a copy of the component map.
// An empty tracker is OK (nothing has failed).
func (h *Health) Snapshot() (Status, map[string]ComponentHealth) {
	h.mu.Lock()
	defer h.mu.Unlock()
	overall := StatusOK
	out := make(map[string]ComponentHealth, len(h.components))
	for name, c := range h.components {
		out[name] = c
		if c.Status.rank() > overall.rank() {
			overall = c.Status
		}
	}
	return overall, out
}

// healthResponse is the /healthz JSON body.
type healthResponse struct {
	Status     Status                     `json:"status"`
	Components map[string]ComponentHealth `json:"components"`
}

// ServeHTTP answers /healthz: 200 while no component is Down, 503 otherwise,
// with a JSON body listing every component. Keys are emitted sorted so the
// body is byte-stable for tests and diffing.
func (h *Health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	overall, comps := h.Snapshot()
	code := http.StatusOK
	if overall == StatusDown {
		code = http.StatusServiceUnavailable
	}
	// json.Marshal sorts map keys, so the body is deterministic already;
	// the explicit sort documents the dependency.
	names := make([]string, 0, len(comps))
	for n := range comps {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(healthResponse{Status: overall, Components: comps})
}
