package obs

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a text-format slog.Logger writing to w at the given
// level, tagging every record with component. Components pass it down so a
// multi-service process (e.g. examples/distributed) interleaves lines that
// are still attributable.
func NewLogger(w io.Writer, level slog.Leveler, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("component", component)
}

// Nop returns a logger that discards every record; services use it when no
// logger is configured so call sites never nil-check.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
