package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"streampca/internal/trace"
)

// fetchTrace GETs /debug/trace?since=cursor and decodes the body.
func fetchTrace(t *testing.T, base string, since uint64) (next uint64, spans []trace.Record) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/debug/trace?since=%d", base, since))
	if err != nil {
		t.Fatalf("GET /debug/trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace status %d", resp.StatusCode)
	}
	var body struct {
		Next  uint64         `json:"next"`
		Spans []trace.Record `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /debug/trace: %v", err)
	}
	return body.Next, body.Spans
}

func TestDebugTraceEndpoint(t *testing.T) {
	tr := trace.New(trace.Config{Component: "test", Capacity: 32})
	srv, err := StartServerWith("127.0.0.1:0", nil, nil, tr.Recorder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	next, spans := fetchTrace(t, base, 0)
	if next != 0 || len(spans) != 0 {
		t.Fatalf("empty ring: next=%d spans=%d", next, len(spans))
	}
	for i := int64(0); i < 5; i++ {
		sp := tr.Start(trace.ForInterval(i), 0, "op", trace.I("interval", i))
		sp.Event("step", trace.S("detail", "x"))
		sp.End()
	}
	next, spans = fetchTrace(t, base, 0)
	if next != 5 || len(spans) != 5 {
		t.Fatalf("next=%d spans=%d, want 5/5", next, len(spans))
	}
	if spans[0].Name != "op" || spans[0].Component != "test" || len(spans[0].Events) != 1 {
		t.Fatalf("span content: %+v", spans[0])
	}
	// Cursor poll returns only the new spans.
	sp := tr.Start(trace.ForInterval(6), 0, "op")
	sp.End()
	next2, spans := fetchTrace(t, base, next)
	if next2 != 6 || len(spans) != 1 {
		t.Fatalf("cursor poll: next=%d spans=%d, want 6/1", next2, len(spans))
	}

	// Malformed cursors are a client error, not a panic.
	resp, err := http.Get(base + "/debug/trace?since=potato")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status %d, want 400", resp.StatusCode)
	}

	// Without a recorder the endpoint does not exist.
	plain, err := StartServer("127.0.0.1:0", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	resp, err = http.Get("http://" + plain.Addr() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-recorder status %d, want 404", resp.StatusCode)
	}
}

// TestServerConcurrentScrapes hammers /metrics and /debug/trace from many
// goroutines while health flips and spans are recorded — the race detector
// is the real assertion (obs runs under -race in ci.sh).
func TestServerConcurrentScrapes(t *testing.T) {
	reg := NewRegistry()
	health := NewHealth()
	tr := trace.New(trace.Config{Component: "conc", Capacity: 64})
	srv, err := StartServerWith("127.0.0.1:0", reg, health, tr.Recorder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	c := reg.Counter("streampca_test_ops_total", "test counter")
	const iters = 50
	var wg sync.WaitGroup

	// Writers: health transitions, metric increments, span records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		states := []Status{StatusOK, StatusDegraded, StatusDown}
		for i := 0; i < iters; i++ {
			health.Set("flapper", states[i%len(states)], "spin")
			c.Inc()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < iters; i++ {
			sp := tr.Start(trace.ForInterval(i), 0, "work", trace.I("i", i))
			sp.Event("tick")
			sp.End()
		}
	}()

	// Readers: parallel scrapes of every endpoint.
	get := func(path string, check func(status int, body string)) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(base + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Errorf("read %s: %v", path, err)
				return
			}
			check(resp.StatusCode, string(b))
		}
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go get("/metrics", func(status int, body string) {
			if status != http.StatusOK || !strings.Contains(body, "streampca_test_ops_total") {
				t.Errorf("/metrics status=%d", status)
			}
		})
		wg.Add(1)
		go get("/debug/trace", func(status int, body string) {
			if status != http.StatusOK {
				t.Errorf("/debug/trace status=%d", status)
				return
			}
			var out struct {
				Spans []trace.Record `json:"spans"`
			}
			if err := json.Unmarshal([]byte(body), &out); err != nil {
				t.Errorf("/debug/trace not JSON: %v", err)
			}
		})
		wg.Add(1)
		go get("/healthz", func(status int, body string) {
			// Down flapper makes 503 legitimate; both are well-formed.
			if status != http.StatusOK && status != http.StatusServiceUnavailable {
				t.Errorf("/healthz status=%d", status)
			}
		})
	}
	wg.Wait()

	if got := c.Value(); got != iters {
		t.Fatalf("counter=%d want %d", got, iters)
	}
	if _, next := tr.Recorder().Snapshot(0); next != iters {
		t.Fatalf("spans=%d want %d", next, iters)
	}
}
