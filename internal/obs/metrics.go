// Package obs is the stdlib-only observability layer shared by the
// monitor, NOC and transport packages: an atomic metrics registry
// (counters, gauges, fixed-bucket histograms) with Prometheus text
// exposition, per-component structured logging on log/slog, component
// health tracking, and an HTTP diagnostics server exposing /metrics,
// /healthz and /debug/pprof.
//
// The paper's claims are performance claims — O(w·log n) monitor updates,
// O(m²·log n) NOC retrains, the §IV-C lazy pull protocol's communication
// savings — so every hot path records its cost here and every future
// scaling PR measures against the same registry.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant metric dimension, e.g. {direction="sent"}.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates the three supported metric families.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters never decrease).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency/size histogram. Bounds are upper
// bucket edges in ascending order; an implicit +Inf bucket is always last.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, the last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-updated
	count  atomic.Int64
}

// DefLatencyBuckets spans 1µs…10s, suitable for both the O(w·log n)
// monitor update (microseconds) and the O(m²·log n) NOC retrain
// (milliseconds to seconds).
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges (exclusive of +Inf).
	Bounds []float64
	// Counts[i] is the non-cumulative count of bucket i; the final extra
	// element is the +Inf bucket.
	Counts []int64
	// Sum is the total of all observed values, Count their number.
	Sum   float64
	Count int64
}

// Snapshot copies the histogram state. Concurrent Observes may straddle the
// copy; totals are eventually consistent, which is fine for exposition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// series is one labeled instance within a family.
type series struct {
	labels    []Label // sorted by name
	labelKey  string  // canonical rendering, "" for unlabeled
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	order  []string
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Metric handles are get-or-create: asking twice for the
// same name+labels returns the same instance, so instrumentation sites and
// stats shims can share counters without plumbing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter name{labels...}, registering it on first use.
// Panics if name is already registered as a different kind (programmer
// error, like a duplicate flag name).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).counter
}

// Gauge returns the gauge name{labels...}, registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).gauge
}

// Histogram returns the histogram name{labels...}, registering it on first
// use. Buckets are ascending upper bounds; nil means DefLatencyBuckets.
// The first registration of a family fixes its buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return r.lookup(name, help, kindHistogram, buckets, labels).histogram
}

func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, l := range sorted {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l.Name, name))
		}
	}
	key := renderLabels(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		if kind == kindHistogram {
			if !sort.Float64sAreSorted(buckets) || len(buckets) == 0 {
				panic(fmt.Sprintf("obs: histogram %q needs ascending non-empty buckets", name))
			}
			fam.bounds = append([]float64(nil), buckets...)
		}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, fam.kind, kind))
	}
	s, ok := fam.series[key]
	if !ok {
		s = &series{labels: sorted, labelKey: key}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: fam.bounds}
			h.counts = make([]atomic.Int64, len(fam.bounds)+1)
			s.histogram = h
		}
		fam.series[key] = s
		fam.order = append(fam.order, key)
	}
	return s
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered by
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family structure under the lock; values are read from
	// atomics afterwards.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, fam := range fams {
		if fam.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, key := range fam.order {
			s := fam.series[key]
			switch fam.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", fam.name, key, s.counter.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", fam.name, key, formatFloat(s.gauge.Value()))
			case kindHistogram:
				snap := s.histogram.Snapshot()
				var cum int64
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					fmt.Fprintf(bw, "%s_bucket%s %d\n",
						fam.name, withLE(s.labels, formatFloat(bound)), cum)
				}
				cum += snap.Counts[len(snap.Bounds)]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", fam.name, withLE(s.labels, "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", fam.name, key, formatFloat(snap.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", fam.name, key, snap.Count)
			}
		}
	}
	return bw.Flush()
}

// renderLabels produces the canonical {a="b",c="d"} suffix ("" when empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// withLE renders the label suffix with an le label appended (histogram
// bucket lines).
func withLE(labels []Label, le string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// validName checks the Prometheus metric/label name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons allowed in metric names only; we accept
// them in both for simplicity).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
