package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "concurrency hammer")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Alternate Inc and Add to cover both paths.
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	c.Add(-5)
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter decreased to %d", got)
	}
}

func TestGaugeConcurrency(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("level", "concurrency hammer")
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
				g.Add(-1)
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	want := float64(goroutines*perG) * 0.5
	if got := g.Value(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(-3.25)
	if got := g.Value(); got != -3.25 {
		t.Fatalf("Set: gauge = %v", got)
	}
}

func TestHistogramConcurrency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("latency_seconds", "concurrency hammer", []float64{0.1, 1, 10})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%4) * 0.5) // 0, 0.5, 1, 1.5
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	wantSum := float64(goroutines) * perG / 4 * (0 + 0.5 + 1 + 1.5)
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	// 0 → ≤0.1; 0.5 and 1 → ≤1 (le is inclusive); 1.5 → ≤10.
	quarter := int64(goroutines * perG / 4)
	if s.Counts[0] != quarter || s.Counts[1] != 2*quarter || s.Counts[2] != quarter || s.Counts[3] != 0 {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "", L("k", "v"))
	b := reg.Counter("x_total", "", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("x_total", "", L("k", "other"))
	if a == c {
		t.Fatal("distinct labels must return distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("x_total", "")
}

func TestRegistryRejectsBadNames(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "9leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q must panic", bad)
				}
			}()
			reg.Counter(bad, "")
		}()
	}
}

func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("streampca_msgs_total", "Messages moved.", L("direction", "sent"), L("type", "volume"))
	c.Add(42)
	reg.Counter("streampca_msgs_total", "Messages moved.", L("direction", "recv"), L("type", "volume"))
	g := reg.Gauge("streampca_monitors", "Connected monitors.")
	g.Set(3)
	h := reg.Histogram("streampca_update_seconds", "Update latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP streampca_msgs_total Messages moved.
# TYPE streampca_msgs_total counter
streampca_msgs_total{direction="sent",type="volume"} 42
streampca_msgs_total{direction="recv",type="volume"} 0
# HELP streampca_monitors Connected monitors.
# TYPE streampca_monitors gauge
streampca_monitors 3
# HELP streampca_update_seconds Update latency.
# TYPE streampca_update_seconds histogram
streampca_update_seconds_bucket{le="0.01"} 1
streampca_update_seconds_bucket{le="0.1"} 2
streampca_update_seconds_bucket{le="+Inf"} 3
streampca_update_seconds_sum 7.055
streampca_update_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "", L("path", `a"b\c`+"\n"))
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 0`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping: got %q, want it to contain %q", b.String(), want)
	}
}

func TestHealthTransitions(t *testing.T) {
	h := NewHealth()
	if overall, _ := h.Snapshot(); overall != StatusOK {
		t.Fatalf("empty health = %v, want ok", overall)
	}
	h.Set("noc", StatusOK, "serving")
	h.Set("detector", StatusDegraded, "no model built")
	if overall, _ := h.Snapshot(); overall != StatusDegraded {
		t.Fatalf("overall = %v, want degraded", overall)
	}
	h.Set("detector", StatusOK, "model fresh")
	if overall, _ := h.Snapshot(); overall != StatusOK {
		t.Fatalf("overall = %v, want ok", overall)
	}
	h.Set("noc", StatusDown, "shut down")
	overall, comps := h.Snapshot()
	if overall != StatusDown {
		t.Fatalf("overall = %v, want down", overall)
	}
	if comps["detector"].Status != StatusOK || comps["noc"].Detail != "shut down" {
		t.Fatalf("components = %+v", comps)
	}
}

func TestHealthzEndpointStatusCodes(t *testing.T) {
	h := NewHealth()
	h.Set("svc", StatusOK, "")

	get := func() (int, healthResponse) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var body healthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return rec.Code, body
	}

	if code, body := get(); code != http.StatusOK || body.Status != StatusOK {
		t.Fatalf("ok state: code=%d body=%+v", code, body)
	}
	h.Set("svc", StatusDegraded, "partial")
	if code, body := get(); code != http.StatusOK || body.Status != StatusDegraded {
		t.Fatalf("degraded state: code=%d body=%+v", code, body)
	}
	h.Set("svc", StatusDown, "gone")
	if code, body := get(); code != http.StatusServiceUnavailable || body.Status != StatusDown {
		t.Fatalf("down state: code=%d body=%+v", code, body)
	}
}

func TestDiagnosticsServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("diag_total", "diagnostics test").Add(7)
	health := NewHealth()
	health.Set("svc", StatusOK, "fine")

	srv, err := StartServer("127.0.0.1:0", reg, health, Nop())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fetch := func(path string) (int, string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := fetch("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "diag_total 7") {
		t.Fatalf("/metrics code=%d body=%q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}

	code, body, ctype = fetch("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz code=%d body=%q", code, body)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/healthz content-type = %q", ctype)
	}

	if code, _, _ = fetch("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ code = %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestLoggerComponentAttr(t *testing.T) {
	var b strings.Builder
	log := NewLogger(&b, nil, "noc")
	log.Info("hello", "k", 1)
	line := b.String()
	if !strings.Contains(line, "component=noc") || !strings.Contains(line, "msg=hello") {
		t.Fatalf("log line = %q", line)
	}
	// Nop must swallow everything without panicking.
	Nop().With("a", "b").Error("dropped", "err", fmt.Errorf("x"))
}
