package core

import (
	"math/rand"
	"runtime"
	"testing"

	"streampca/internal/randproj"
)

// TestMonitorUpdateDeterministic feeds the same volume stream to monitors
// configured with different worker counts and requires exactly equal sketch
// state: each flow's histogram is owned by one shard, so worker count must
// change scheduling only, never results.
func TestMonitorUpdateDeterministic(t *testing.T) {
	const (
		numFlows  = 90
		windowLen = 64
		intervals = 100
	)
	gen, err := randproj.NewGenerator(randproj.Config{Seed: 7, SketchLen: 20})
	if err != nil {
		t.Fatal(err)
	}
	flowIDs := make([]int, numFlows)
	for i := range flowIDs {
		flowIDs[i] = i
	}
	rng := rand.New(rand.NewSource(99))
	stream := make([][]float64, intervals)
	for i := range stream {
		stream[i] = make([]float64, numFlows)
		for j := range stream[i] {
			stream[i][j] = 100 + 10*rng.NormFloat64()
		}
	}

	run := func(workers int) SketchReport {
		mon, err := NewMonitor(MonitorConfig{
			FlowIDs:   flowIDs,
			WindowLen: windowLen,
			Epsilon:   0.05,
			Gen:       gen,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, vols := range stream {
			if err := mon.Update(int64(i+1), vols); err != nil {
				t.Fatal(err)
			}
		}
		return mon.Report()
	}

	ref := run(1)
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.Interval != ref.Interval {
			t.Fatalf("workers=%d: interval %d != %d", w, got.Interval, ref.Interval)
		}
		for i := range ref.FlowIDs {
			if got.Means[i] != ref.Means[i] {
				t.Fatalf("workers=%d flow %d: mean %v != %v", w, i, got.Means[i], ref.Means[i])
			}
			if got.Counts[i] != ref.Counts[i] {
				t.Fatalf("workers=%d flow %d: count %d != %d", w, i, got.Counts[i], ref.Counts[i])
			}
			if got.Buckets[i] != ref.Buckets[i] {
				t.Fatalf("workers=%d flow %d: buckets %d != %d", w, i, got.Buckets[i], ref.Buckets[i])
			}
			for k := range ref.Sketches[i] {
				if got.Sketches[i][k] != ref.Sketches[i][k] {
					t.Fatalf("workers=%d flow %d sketch[%d]: %v != %v",
						w, i, k, got.Sketches[i][k], ref.Sketches[i][k])
				}
			}
		}
	}
}

// TestMonitorUpdateErrorDeterministic: a non-monotone interval must produce
// the same (lowest-flow) error regardless of worker count.
func TestMonitorUpdateErrorDeterministic(t *testing.T) {
	gen, err := randproj.NewGenerator(randproj.Config{Seed: 7, SketchLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	flowIDs := make([]int, 70)
	for i := range flowIDs {
		flowIDs[i] = i
	}
	var refMsg string
	for _, w := range []int{1, 2, 7} {
		mon, err := NewMonitor(MonitorConfig{
			FlowIDs: flowIDs, WindowLen: 16, Epsilon: 0.1, Gen: gen, Workers: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		vols := make([]float64, len(flowIDs))
		if err := mon.Update(5, vols); err != nil {
			t.Fatal(err)
		}
		err = mon.Update(5, vols) // not strictly increasing → every flow fails
		if err == nil {
			t.Fatalf("workers=%d: want error for repeated interval", w)
		}
		if refMsg == "" {
			refMsg = err.Error()
		} else if err.Error() != refMsg {
			t.Fatalf("workers=%d: error %q differs from serial %q", w, err.Error(), refMsg)
		}
	}
}

// TestDetectorRebuildDeterministic: the full rebuild (Gram + eigensolver +
// rank + threshold) must be identical across worker counts.
func TestDetectorRebuildDeterministic(t *testing.T) {
	const (
		numFlows  = 100
		sketchLen = 40
	)
	rng := rand.New(rand.NewSource(123))
	sketches := make([][]float64, numFlows)
	means := make([]float64, numFlows)
	for j := range sketches {
		sketches[j] = make([]float64, sketchLen)
		for k := range sketches[j] {
			sketches[j][k] = rng.NormFloat64() * 50
		}
		means[j] = 100 + rng.NormFloat64()
	}

	run := func(workers int) *Model {
		det, err := NewDetector(DetectorConfig{
			NumFlows:  numFlows,
			WindowLen: 256,
			SketchLen: sketchLen,
			Alpha:     0.01,
			Mode:      RankThreeSigma,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := det.RebuildModel(sketches, means, 42); err != nil {
			t.Fatal(err)
		}
		return det.Model()
	}

	ref := run(1)
	for _, w := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if got.Rank != ref.Rank {
			t.Fatalf("workers=%d: rank %d != %d", w, got.Rank, ref.Rank)
		}
		if got.Threshold != ref.Threshold {
			t.Fatalf("workers=%d: threshold %v != %v", w, got.Threshold, ref.Threshold)
		}
		for j := range ref.Singular {
			if got.Singular[j] != ref.Singular[j] {
				t.Fatalf("workers=%d: singular value %d differs", w, j)
			}
		}
		for i := 0; i < numFlows; i++ {
			for j := 0; j < numFlows; j++ {
				if got.Components.At(i, j) != ref.Components.At(i, j) {
					t.Fatalf("workers=%d: component (%d,%d) differs", w, i, j)
				}
			}
		}
	}
}
