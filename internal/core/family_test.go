package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"streampca/internal/sketch"
)

// plantedSketches builds per-flow sketch columns of an l×m matrix with the
// given planted singular spectrum plus tiny noise, so the residual spectrum
// past any fixed rank has real structure both builders must agree on.
func plantedSketches(rng *rand.Rand, l, m int, spectrum []float64, noise float64) [][]float64 {
	z := make([][]float64, l)
	for k := range z {
		z[k] = make([]float64, m)
	}
	for _, s := range spectrum {
		u := make([]float64, l)
		v := make([]float64, m)
		var un, vn float64
		for i := range u {
			u[i] = rng.NormFloat64()
			un += u[i] * u[i]
		}
		for j := range v {
			v[j] = rng.NormFloat64()
			vn += v[j] * v[j]
		}
		un, vn = math.Sqrt(un), math.Sqrt(vn)
		for i := range u {
			for j := range v {
				z[i][j] += s * (u[i] / un) * (v[j] / vn)
			}
		}
	}
	for i := range z {
		for j := range z[i] {
			z[i][j] += noise * rng.NormFloat64()
		}
	}
	sketches := make([][]float64, m)
	for j := 0; j < m; j++ {
		col := make([]float64, l)
		for k := 0; k < l; k++ {
			col[k] = z[k][j]
		}
		sketches[j] = col
	}
	return sketches
}

// TestRSVDBuilderMatchesJacobi: on a spectrum whose residual mass sits well
// inside the sampled subspace, the randomized builder must reproduce the
// Jacobi model — same rank, matching leading singular values and threshold.
func TestRSVDBuilderMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	const l, m, r = 16, 24, 3
	spectrum := make([]float64, 8)
	for j := range spectrum {
		spectrum[j] = 100 / float64(j+1)
	}
	sketches := plantedSketches(rng, l, m, spectrum, 1e-8)
	means := make([]float64, m)

	build := func(b ModelBuilder) *Model {
		det, err := NewDetector(DetectorConfig{
			NumFlows: m, WindowLen: 512, SketchLen: l,
			Alpha: 0.01, Mode: RankFixed, FixedRank: r,
			Builder: b, RSVDSeed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := det.RebuildModel(sketches, means, 1); err != nil {
			t.Fatalf("builder %v: %v", b, err)
		}
		return det.Model()
	}
	exact := build(BuildJacobi)
	approx := build(BuildRSVD)
	if exact.Rank != approx.Rank {
		t.Fatalf("ranks differ: %d vs %d", exact.Rank, approx.Rank)
	}
	if len(approx.Singular) != m {
		t.Fatalf("rsvd spectrum zero-padded to %d, want %d", len(approx.Singular), m)
	}
	for j := 0; j < len(spectrum); j++ {
		rel := math.Abs(approx.Singular[j]-exact.Singular[j]) / exact.Singular[j]
		if rel > 1e-6 {
			t.Fatalf("singular value %d: %v vs %v (rel %v)", j, approx.Singular[j], exact.Singular[j], rel)
		}
	}
	if exact.ThresholdUnavailable || approx.ThresholdUnavailable {
		t.Fatal("threshold unavailable on a well-conditioned spectrum")
	}
	if rel := math.Abs(approx.Threshold-exact.Threshold) / exact.Threshold; rel > 1e-3 {
		t.Fatalf("thresholds diverge: %v vs %v (rel %v)", approx.Threshold, exact.Threshold, rel)
	}
	// The subspaces agree: each leading rsvd component is ±the Jacobi one.
	for j := 0; j < r; j++ {
		var dot float64
		for i := 0; i < m; i++ {
			dot += approx.Components.At(i, j) * exact.Components.At(i, j)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-6 {
			t.Fatalf("component %d: |<v,v*>| = %v", j, math.Abs(dot))
		}
	}
}

// TestRSVDTruncatedSpectrumThresholdUnavailable: when the whole sampled
// spectrum lands in the normal subspace (rank ≥ p < m) there is no residual
// to form a control limit from, and the model must be flagged — the rsvd
// analogue of the PR-4 degenerate-spectrum fix, not a silent 0 threshold.
func TestRSVDTruncatedSpectrumThresholdUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const l, m = 8, 20
	sketches := plantedSketches(rng, l, m, []float64{50, 20, 10, 5}, 1e-6)
	means := make([]float64, m)
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 256, SketchLen: l,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 8, // ≥ p = min(8+10, l=8, m)
		Builder: BuildRSVD, RSVDSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.RebuildModel(sketches, means, 1); err != nil {
		t.Fatal(err)
	}
	model := det.Model()
	if !model.ThresholdUnavailable {
		t.Fatal("rank ≥ sampled spectrum must flag ThresholdUnavailable")
	}
	if model.Threshold != 0 {
		t.Fatalf("placeholder threshold = %v, want 0", model.Threshold)
	}
	if _, err := det.Threshold(); !errors.Is(err, ErrThresholdUnavailable) {
		t.Fatalf("Threshold() error = %v, want ErrThresholdUnavailable", err)
	}

	// The same rank under Jacobi sees the full m-length spectrum: 8 < m
	// leaves a genuine residual and the threshold stays available.
	det2, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 256, SketchLen: l,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := det2.RebuildModel(sketches, means, 1); err != nil {
		t.Fatal(err)
	}
	if det2.Model().ThresholdUnavailable {
		t.Fatal("jacobi with rank < m must keep its threshold")
	}
}

// fdBlocks feeds a stream through one FD sketcher per monitor block and
// returns the per-block snapshots.
func fdBlocks(t *testing.T, assign [][]int, ell int, x [][]float64) []sketch.Snapshot {
	t.Helper()
	blocks := make([]sketch.Snapshot, len(assign))
	for bi, ids := range assign {
		fd, err := sketch.NewFD(sketch.Config{Family: sketch.FamilyFD, FlowIDs: ids, Ell: ell})
		if err != nil {
			t.Fatal(err)
		}
		vol := make([]float64, len(ids))
		for ti, row := range x {
			for i, id := range ids {
				vol[i] = row[id]
			}
			if err := fd.Update(int64(ti+1), vol); err != nil {
				t.Fatal(err)
			}
		}
		blocks[bi] = fd.Snapshot()
	}
	return blocks
}

// TestRebuildFDTruncatedSpectrumThresholdUnavailable: FD keeps at most Σ2ℓ
// basis directions; asking for a normal subspace at least that large leaves
// no residual spectrum and must flag the threshold, exactly like the rsvd
// truncation and the PR-4 degenerate case.
func TestRebuildFDTruncatedSpectrumThresholdUnavailable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m, ell = 6, 2
	x := make([][]float64, 32)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = 100 + 10*rng.NormFloat64()
		}
		x[i] = row
	}
	blocks := fdBlocks(t, [][]int{{0, 1, 2, 3, 4, 5}}, ell, x)
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 32, SketchLen: ell,
		Alpha: 0.01, Mode: RankFixed, FixedRank: m,
		Family: sketch.FamilyFD,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Rebuild(Fetch{Blocks: blocks, Interval: 32}); err != nil {
		t.Fatal(err)
	}
	model := det.Model()
	if !model.ThresholdUnavailable {
		t.Fatal("rank ≥ FD basis count must flag ThresholdUnavailable")
	}
	if model.Threshold != 0 {
		t.Fatalf("placeholder threshold = %v, want 0", model.Threshold)
	}
	if _, err := det.Threshold(); !errors.Is(err, ErrThresholdUnavailable) {
		t.Fatalf("Threshold() error = %v, want ErrThresholdUnavailable", err)
	}

	// Observe must surface the condition on its Decision, not alarm.
	fetch := func() (Fetch, error) { return Fetch{Blocks: blocks, Interval: 32}, nil }
	y := make([]float64, m)
	y[0] = 1e6
	dec, err := det.Observe(y, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ThresholdUnavailable || dec.Anomalous {
		t.Fatalf("decision: ThresholdUnavailable=%v Anomalous=%v", dec.ThresholdUnavailable, dec.Anomalous)
	}
}

// TestRebuildFDValidation covers the typed-error surface of the FD model
// build: empty pulls, foreign families, flow overlap and coverage gaps.
func TestRebuildFDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const m, ell = 10, 2
	x := make([][]float64, 16)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			row[j] = 50 + rng.NormFloat64()
		}
		x[i] = row
	}
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 16, SketchLen: ell,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 1,
		Family: sketch.FamilyFD,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := fdBlocks(t, [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}}, ell, x)
	if err := det.RebuildFD(good, 16); err != nil {
		t.Fatalf("good blocks: %v", err)
	}
	if err := det.RebuildFD(nil, 16); !errors.Is(err, ErrInput) {
		t.Fatalf("no blocks: %v", err)
	}
	overlap := fdBlocks(t, [][]int{{0, 1, 2, 3, 4}, {4, 6, 7, 8, 9}}, ell, x)
	if err := det.RebuildFD(overlap, 16); !errors.Is(err, ErrInput) {
		t.Fatalf("overlapping flows: %v", err)
	}
	gap := fdBlocks(t, [][]int{{0, 1, 2, 3, 4}}, ell, x)
	if err := det.RebuildFD(gap, 16); !errors.Is(err, ErrInput) {
		t.Fatalf("coverage gap: %v", err)
	}
	foreign := append([]sketch.Snapshot(nil), good...)
	foreign[0].Family = sketch.FamilyRandProj
	if err := det.RebuildFD(foreign, 16); !errors.Is(err, ErrInput) {
		t.Fatalf("foreign family: %v", err)
	}
}

// TestFDClusterEndToEnd runs the full lazy protocol on the FD family: an
// in-process cluster of FD monitors, per-block model builds at the NOC, and
// an injected structured anomaly that must still raise an alarm.
func TestFDClusterEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, m, k := 200, 27, 2
	x := lowRankStream(rng, 3*n, m, k, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 3, WindowLen: n, Alpha: 0.002,
		Family: sketch.FamilyFD, FDEll: 4, FixedRank: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Generator() != nil {
		t.Fatal("FD cluster must not build a projection generator")
	}
	var alarms, steps int
	spikeAt := 2*n + 50
	var spikeDec Decision
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		observed := row
		if i == spikeAt {
			observed = append([]float64(nil), row...)
			observed[0] += 8000
			observed[4] += 6000
		}
		if err := cl.Update(int64(i+1), row); err != nil {
			t.Fatal(err)
		}
		dec, err := cl.Detector().Observe(observed, cl.Fetch)
		if err != nil {
			t.Fatal(err)
		}
		if i >= n {
			steps++
			if dec.Anomalous {
				alarms++
			}
		}
		if i == spikeAt {
			spikeDec = dec
		}
	}
	if !spikeDec.Anomalous {
		t.Fatalf("injected anomaly missed: %+v", spikeDec)
	}
	if rate := float64(alarms) / float64(steps); rate > 0.25 {
		t.Fatalf("alarm rate %v too high", rate)
	}
	model := cl.Detector().Model()
	if model == nil || model.ThresholdUnavailable {
		t.Fatalf("model = %+v", model)
	}
}

// TestClusterFDEllDefaulting: an even split defaults ℓ per monitor; an uneven
// one must demand an explicit ℓ (monitors would otherwise disagree).
func TestClusterFDEllDefaulting(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{
		NumFlows: 9, NumMonitors: 3, WindowLen: 16, Alpha: 0.01,
		Family: sketch.FamilyFD, FixedRank: 1,
	}); err != nil {
		t.Fatalf("even split: %v", err)
	}
	if _, err := NewCluster(ClusterConfig{
		NumFlows: 10, NumMonitors: 3, WindowLen: 16, Alpha: 0.01,
		Family: sketch.FamilyFD, FixedRank: 1,
	}); !errors.Is(err, ErrConfig) {
		t.Fatalf("uneven split without explicit ell: %v", err)
	}
	if _, err := NewCluster(ClusterConfig{
		NumFlows: 31, NumMonitors: 3, WindowLen: 16, Alpha: 0.01,
		Family: sketch.FamilyFD, FDEll: 4, FixedRank: 1,
	}); err != nil {
		t.Fatalf("uneven split with explicit ell: %v", err)
	}
}

// TestDetectorRejectsFDThreeSigma: the 3σ rank heuristic needs the global
// sketch matrix, which FD never materializes.
func TestDetectorRejectsFDThreeSigma(t *testing.T) {
	_, err := NewDetector(DetectorConfig{
		NumFlows: 4, WindowLen: 16, SketchLen: 2, Alpha: 0.01,
		Mode: RankThreeSigma, Family: sketch.FamilyFD,
	})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("fd + 3sigma: %v", err)
	}
}
