package core

import (
	"fmt"

	"streampca/internal/anomography"
	"streampca/internal/mat"
)

// IdentifiedFlow is one culprit flow from Identify, in the wire-friendly
// shape the NOC attaches to alarm broadcasts and flight records.
type IdentifiedFlow struct {
	// Flow is the global flow index.
	Flow int
	// Amount is the estimated injected volume (signed, measurement units).
	Amount float64
	// Confidence is the flow's marginal explained-energy fraction, in [0,1].
	Confidence float64
}

// Identification is the full result of identifying an alarmed measurement.
type Identification struct {
	// Flows are the culprits, ranked by Confidence descending.
	Flows []IdentifiedFlow
	// InitialSPE and ResidualSPE bracket the explanation: the residual
	// distance before the pursuit and after removing the culprits' traffic.
	InitialSPE  float64
	ResidualSPE float64
	// ExplainedFrac is the fraction of residual energy the culprits explain.
	ExplainedFrac float64
	// Stop is why the pursuit terminated (anomography.StopReason string).
	Stop string
}

// principal returns the m×rank matrix of in-force principal components
// (column j = â_j) — the P_r the attribution and identification paths
// project against. Returns nil for a rank-0 model.
func (d *Detector) principal() *mat.Matrix {
	r := d.model.Rank
	if r <= 0 {
		return nil
	}
	m := d.cfg.NumFlows
	pr := mat.NewMatrix(m, r)
	for i := 0; i < m; i++ {
		src := d.model.Components.RowView(i)
		copy(pr.RowView(i), src[:r])
	}
	return pr
}

// anomalousResidual centers x against the model means and projects it onto
// the anomalous subspace through the blocked-tile kernels. Both Attribute
// and Identify start here, so the two views of an alarm are computed from
// the same residual bit for bit.
func (d *Detector) anomalousResidual(x []float64, pr *mat.Matrix) ([]float64, error) {
	m := d.cfg.NumFlows
	if len(x) != m {
		return nil, fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(x), m)
	}
	y := make([]float64, m)
	for j, v := range x {
		y[j] = v - d.model.Means[j]
	}
	return anomography.Residual(pr, y, d.cfg.Workers)
}

// Identify runs the anomography pursuit on a measurement against the
// in-force model: it returns the ranked set of flows whose injections
// explain the anomalous residual, stopping when the unexplained residual
// falls below the model's Q-threshold (so identification ends exactly where
// the alarm would), when maxK culprits are found, or when the next flow
// would explain a negligible fraction of the energy. maxK ≤ 0 uses
// anomography.DefaultMaxK. Call it on alarmed measurements; on quiet ones
// it returns an empty identification.
func (d *Detector) Identify(x []float64, maxK int) (*Identification, error) {
	if d.model == nil {
		return nil, ErrNoModel
	}
	pr := d.principal()
	r0, err := d.anomalousResidual(x, pr)
	if err != nil {
		return nil, err
	}
	cfg := anomography.Config{
		MaxK:         maxK,
		MinSignature: anomography.DefaultMinSignature(d.cfg.NumFlows, d.model.Rank),
		Workers:      d.cfg.Workers,
	}
	if !d.model.ThresholdUnavailable {
		cfg.MinResidual = d.model.Threshold
	}
	res, err := anomography.Pursue(pr, r0, cfg)
	if err != nil {
		return nil, err
	}
	id := &Identification{
		Flows:         make([]IdentifiedFlow, len(res.Culprits)),
		InitialSPE:    res.InitialSPE,
		ResidualSPE:   res.ResidualSPE,
		ExplainedFrac: res.ExplainedFrac,
		Stop:          string(res.Stop),
	}
	for i, c := range res.Culprits {
		id.Flows[i] = IdentifiedFlow{Flow: c.Flow, Amount: c.Amount, Confidence: c.Confidence}
	}
	return id, nil
}
