package core

import (
	"errors"
	"testing"
)

// degenerateSketches builds a diagonal sketch matrix whose spectrum has one
// dominant residual variance plus many equal small ones — φ1φ3/φ2² ≈ 2, so
// the Jackson–Mudholkar h0 goes negative and stats.QStatistic reports
// ErrDegenerate.
func degenerateSketches(m int) ([][]float64, []float64) {
	sketches := make([][]float64, m)
	for j := range sketches {
		s := make([]float64, m)
		if j == 0 {
			s[j] = 1
		} else {
			s[j] = 0.1 // 100 tail variances of 0.01 sum to the dominant 1
		}
		sketches[j] = s
	}
	return sketches, make([]float64, m)
}

// TestRebuildModelDegenerateSpectrum asserts the detector survives a
// degenerate residual spectrum: the model is kept (distances remain useful)
// but the threshold is flagged unusable instead of being stored as a clamped
// garbage value that comparisons would silently never exceed.
func TestRebuildModelDegenerateSpectrum(t *testing.T) {
	const m = 101
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 64, SketchLen: m,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sketches, means := degenerateSketches(m)
	if err := det.RebuildModel(sketches, means, 1); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	model := det.Model()
	if !model.ThresholdUnavailable {
		t.Fatal("model.ThresholdUnavailable = false on a degenerate spectrum")
	}
	if model.Threshold != 0 {
		t.Fatalf("placeholder threshold = %v, want 0", model.Threshold)
	}
	if _, err := det.Threshold(); !errors.Is(err, ErrThresholdUnavailable) {
		t.Fatalf("Threshold() error = %v, want ErrThresholdUnavailable", err)
	}
}

// TestObserveThresholdUnavailable drives the lazy protocol against a
// persistently degenerate spectrum: the decision must surface
// ThresholdUnavailable (after one refresh attempt) rather than comparing the
// distance against the 0 placeholder or alarming.
func TestObserveThresholdUnavailable(t *testing.T) {
	const m = 101
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 64, SketchLen: m,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sketches, means := degenerateSketches(m)
	fetches := 0
	fetch := func() (Fetch, error) {
		fetches++
		return Fetch{Sketches: sketches, Means: means, Interval: int64(fetches)}, nil
	}
	x := make([]float64, m)
	x[0] = 100 // enormous residual; with any finite threshold this would alarm
	dec, err := det.Observe(x, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ThresholdUnavailable {
		t.Fatal("decision does not report ThresholdUnavailable")
	}
	if dec.Anomalous {
		t.Fatal("alarm raised without a usable threshold")
	}
	if !dec.Refreshed {
		t.Fatal("first observation must have built a model")
	}
	if dec.Distance <= 0 {
		t.Fatalf("distance = %v, want > 0 (diagnostics stay meaningful)", dec.Distance)
	}

	// A second observation holds a model with an unusable threshold: Observe
	// must retry one refresh (the spectrum might have recovered) and then
	// report the condition again, not alarm.
	before := fetches
	dec, err = det.Observe(x, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.ThresholdUnavailable || dec.Anomalous {
		t.Fatalf("second decision: ThresholdUnavailable=%v Anomalous=%v", dec.ThresholdUnavailable, dec.Anomalous)
	}
	if fetches != before+1 {
		t.Fatalf("expected exactly one refresh attempt, got %d", fetches-before)
	}

	// Once the fetch serves a well-conditioned spectrum the detector must
	// recover: threshold usable again, oversized residual alarms.
	for j := 1; j < m; j++ {
		sketches[j][j] = 0.5 // equalize the tail → h0 > 0
	}
	dec, err = det.Observe(x, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ThresholdUnavailable {
		t.Fatal("still unavailable after spectrum recovered")
	}
	if !dec.Anomalous {
		t.Fatalf("recovered threshold %v did not flag distance %v", dec.Threshold, dec.Distance)
	}
	if _, err := det.Threshold(); err != nil {
		t.Fatalf("Threshold() after recovery: %v", err)
	}
}
