package core

import (
	"math"
	"testing"
)

// degenerateSketches builds a diagonal sketch matrix whose spectrum has one
// dominant residual variance plus many equal small ones — φ1φ3/φ2² ≈ 2, so
// the Jackson–Mudholkar h0 goes negative on the full residual and a usable
// threshold only exists after residual-rank capping.
func degenerateSketches(m int) ([][]float64, []float64) {
	sketches := make([][]float64, m)
	for j := range sketches {
		s := make([]float64, m)
		if j == 0 {
			s[j] = 1
		} else {
			s[j] = 0.1 // 100 tail variances of 0.01 sum to the dominant 1
		}
		sketches[j] = s
	}
	return sketches, make([]float64, m)
}

// TestRebuildModelCapsDegenerateSpectrum asserts the detector recovers a
// usable control limit from an h0 ≤ 0 residual spectrum by residual-rank
// capping: the model carries a real (capped) threshold instead of being
// flagged threshold-less for the lifetime of the degenerate traffic mix.
func TestRebuildModelCapsDegenerateSpectrum(t *testing.T) {
	const m = 101
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 64, SketchLen: m,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sketches, means := degenerateSketches(m)
	if err := det.RebuildModel(sketches, means, 1); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	model := det.Model()
	if model.ThresholdUnavailable {
		t.Fatal("capping must recover a threshold on this spectrum, not flag it unavailable")
	}
	if model.ThresholdCapped <= 0 {
		t.Fatalf("model.ThresholdCapped = %d, want > 0 (full residual is h0-degenerate)", model.ThresholdCapped)
	}
	if model.Threshold <= 0 || math.IsNaN(model.Threshold) || math.IsInf(model.Threshold, 0) {
		t.Fatalf("capped threshold = %v", model.Threshold)
	}
	if th, err := det.Threshold(); err != nil || th != model.Threshold {
		t.Fatalf("Threshold() = %v, %v", th, err)
	}
}

// TestObserveCappedThresholdAlarms drives the lazy protocol against the
// degenerate spectrum: with the capped threshold in place an oversized
// residual must alarm (the pre-capping behavior reported ThresholdUnavailable
// every interval, leaving the detector blind on such traffic), and once the
// tail equalizes the exact uncapped limit must take over again.
func TestObserveCappedThresholdAlarms(t *testing.T) {
	const m = 101
	det, err := NewDetector(DetectorConfig{
		NumFlows: m, WindowLen: 64, SketchLen: m,
		Alpha: 0.01, Mode: RankFixed, FixedRank: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	sketches, means := degenerateSketches(m)
	fetches := 0
	fetch := func() (Fetch, error) {
		fetches++
		return Fetch{Sketches: sketches, Means: means, Interval: int64(fetches)}, nil
	}
	x := make([]float64, m)
	x[0] = 100 // enormous residual, far past any threshold this spectrum admits
	dec, err := det.Observe(x, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ThresholdUnavailable {
		t.Fatal("capping must keep the threshold usable on this spectrum")
	}
	if !dec.Refreshed {
		t.Fatal("first observation must have built a model")
	}
	if !dec.Anomalous {
		t.Fatalf("capped threshold %v did not flag distance %v", dec.Threshold, dec.Distance)
	}

	// Once the fetch serves a well-conditioned spectrum the exact limit
	// returns: no capping, still alarming on the oversized residual.
	for j := 1; j < m; j++ {
		sketches[j][j] = 0.5 // equalize the tail → h0 > 0 uncapped
	}
	if err := det.RebuildModel(sketches, means, int64(fetches+1)); err != nil {
		t.Fatal(err)
	}
	if capped := det.Model().ThresholdCapped; capped != 0 {
		t.Fatalf("well-conditioned spectrum still capped %d components", capped)
	}
	dec, err = det.Observe(x, fetch)
	if err != nil {
		t.Fatal(err)
	}
	if dec.ThresholdUnavailable || !dec.Anomalous {
		t.Fatalf("recovered spectrum: ThresholdUnavailable=%v Anomalous=%v", dec.ThresholdUnavailable, dec.Anomalous)
	}
}
