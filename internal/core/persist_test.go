package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"streampca/internal/randproj"
)

// fittedDetector builds a detector with a model from a synthetic stream.
func fittedDetector(t *testing.T) (*Detector, *Cluster) {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	n, m := 128, 6
	x := lowRankStream(rng, n, m, 2, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 2, WindowLen: n, Epsilon: 0.05, Alpha: 0.01,
		Sketch: randproj.Config{Seed: 2, SketchLen: 32}, FixedRank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCluster(t, cl, x)
	f, err := cl.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Detector().RebuildModel(f.Sketches, f.Means, f.Interval); err != nil {
		t.Fatal(err)
	}
	return cl.Detector(), cl
}

func TestSaveLoadModelRoundTrip(t *testing.T) {
	det, _ := fittedDetector(t)
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := NewDetector(det.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	if !restored.HasModel() {
		t.Fatal("model not adopted")
	}

	// Identical behaviour on arbitrary vectors.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, det.Config().NumFlows)
		for j := range x {
			x[j] = 1000 + 100*rng.NormFloat64()
		}
		a, err := det.Distance(x)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Distance(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-12*math.Max(1, a) {
			t.Fatalf("distance diverged: %v vs %v", a, b)
		}
	}
	ta, err := det.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := restored.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Fatalf("thresholds differ: %v vs %v", ta, tb)
	}
	if det.Model().BuiltAt != restored.Model().BuiltAt {
		t.Fatal("BuiltAt lost")
	}
}

func TestSaveModelWithoutModel(t *testing.T) {
	det, err := NewDetector(DetectorConfig{
		NumFlows: 2, WindowLen: 10, SketchLen: 4, Alpha: 0.01, FixedRank: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); !errors.Is(err, ErrNoModel) {
		t.Fatalf("save without model: %v", err)
	}
}

func TestLoadModelValidation(t *testing.T) {
	det, _ := fittedDetector(t)

	// Garbage stream.
	fresh, err := NewDetector(det.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage must fail")
	}

	// Wrong flow count.
	var buf bytes.Buffer
	if err := det.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	smaller, err := NewDetector(DetectorConfig{
		NumFlows: 3, WindowLen: 128, SketchLen: 32, Alpha: 0.01, FixedRank: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := smaller.LoadModel(&buf); !errors.Is(err, ErrInput) {
		t.Fatalf("dimension mismatch: %v", err)
	}

	// Corrupted threshold.
	bad := *det.Model()
	bad.Threshold = math.NaN()
	if err := det.validateModel(&bad); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN threshold: %v", err)
	}
	// Corrupted spectrum ordering.
	bad = *det.Model()
	bad.Singular = append([]float64(nil), bad.Singular...)
	if len(bad.Singular) > 1 {
		bad.Singular[0], bad.Singular[len(bad.Singular)-1] = bad.Singular[len(bad.Singular)-1], bad.Singular[0]+1
	}
	if err := det.validateModel(&bad); !errors.Is(err, ErrInput) {
		t.Fatalf("unsorted spectrum: %v", err)
	}
	// Bad rank.
	bad = *det.Model()
	bad.Rank = 99
	if err := det.validateModel(&bad); !errors.Is(err, ErrInput) {
		t.Fatalf("bad rank: %v", err)
	}
}
