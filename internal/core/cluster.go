package core

import (
	"fmt"

	"streampca/internal/randproj"
	"streampca/internal/sketch"
)

// ClusterConfig parameterizes an in-process cluster: several monitors
// partitioning the flow space plus one NOC detector. It is the simplest way
// to run the full algorithm without the network layer, and what the
// evaluation harness uses.
type ClusterConfig struct {
	// NumFlows is m.
	NumFlows int
	// NumMonitors partitions the flows round-robin across monitors.
	NumMonitors int
	// WindowLen is n.
	WindowLen int
	// Epsilon is the VH parameter ε.
	Epsilon float64
	// Alpha is the detector's false-alarm rate.
	Alpha float64
	// Family selects the sketcher implementation on every monitor; the zero
	// value is the paper's random projection.
	Family sketch.Family
	// Sketch configures the shared random projection (Seed, SketchLen,
	// Dist, …). WindowLen is filled from the cluster's if unset. Ignored for
	// the FD family.
	Sketch randproj.Config
	// FDEll is the per-monitor Frequent Directions basis budget ℓ (FD family
	// only); 0 selects sketch.DefaultEll of each monitor's flow count. When 0,
	// every monitor must get the same flow count (round-robin guarantees it
	// only when NumMonitors divides NumFlows) or construction fails, since the
	// detector needs one shared ℓ.
	FDEll int
	// Rank configures rank selection (see DetectorConfig).
	Mode       RankMode
	FixedRank  int
	EnergyFrac float64
	// Builder selects the randproj model build (see DetectorConfig); ignored
	// for the FD family.
	Builder        ModelBuilder
	RSVDOversample int
	RSVDPowerIters int
	RSVDSeed       uint64
	// Workers bounds the goroutines each monitor and the detector use for
	// their sharded hot paths; 0 (or negative) selects
	// runtime.GOMAXPROCS(0). Results are identical for any value.
	Workers int
}

// Cluster is an in-process assembly of monitors and a NOC detector.
type Cluster struct {
	monitors []*Monitor
	detector *Detector
	// flowOwner[j] is the monitor index owning flow j; flowSlot[j] is the
	// flow's position within that monitor.
	flowOwner []int
	flowSlot  []int
	gen       *randproj.Generator
	family    sketch.Family
	sketchLen int
	windowLen int
	updates   int
}

// NewCluster builds the monitors and detector.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, cfg.NumFlows)
	}
	if cfg.NumMonitors < 1 || cfg.NumMonitors > cfg.NumFlows {
		return nil, fmt.Errorf("%w: %d monitors for %d flows", ErrConfig, cfg.NumMonitors, cfg.NumFlows)
	}
	// Round-robin flow assignment.
	assign := make([][]int, cfg.NumMonitors)
	flowOwner := make([]int, cfg.NumFlows)
	flowSlot := make([]int, cfg.NumFlows)
	for j := 0; j < cfg.NumFlows; j++ {
		mIdx := j % cfg.NumMonitors
		flowOwner[j] = mIdx
		flowSlot[j] = len(assign[mIdx])
		assign[mIdx] = append(assign[mIdx], j)
	}

	// The detector needs the shared sketch parameter: l from the generator
	// for randproj, ℓ for FD.
	var gen *randproj.Generator
	var sketchLen int
	switch cfg.Family {
	case sketch.FamilyRandProj:
		sketchCfg := cfg.Sketch
		if sketchCfg.WindowLen == 0 {
			sketchCfg.WindowLen = cfg.WindowLen
		}
		var err error
		if gen, err = randproj.NewGenerator(sketchCfg); err != nil {
			return nil, fmt.Errorf("generator: %w", err)
		}
		sketchLen = gen.SketchLen()
	case sketch.FamilyFD:
		sketchLen = cfg.FDEll
		if sketchLen == 0 {
			// Defaulting ℓ from the flow count only works when every monitor
			// gets the same count; otherwise monitors would disagree on ℓ.
			if cfg.NumFlows%cfg.NumMonitors != 0 {
				return nil, fmt.Errorf("%w: fd ell must be set explicitly when %d monitors split %d flows unevenly",
					ErrConfig, cfg.NumMonitors, cfg.NumFlows)
			}
			sketchLen = sketch.DefaultEll(len(assign[0]))
		}
	default:
		return nil, fmt.Errorf("%w: unknown sketch family %d", ErrConfig, int(cfg.Family))
	}

	monitors := make([]*Monitor, cfg.NumMonitors)
	for i := range monitors {
		mon, err := NewMonitor(MonitorConfig{
			Family:    cfg.Family,
			FlowIDs:   assign[i],
			WindowLen: cfg.WindowLen,
			Epsilon:   cfg.Epsilon,
			Gen:       gen,
			FDEll:     sketchLen,
			Workers:   cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("monitor %d: %w", i, err)
		}
		monitors[i] = mon
	}

	det, err := NewDetector(DetectorConfig{
		NumFlows:       cfg.NumFlows,
		WindowLen:      cfg.WindowLen,
		SketchLen:      sketchLen,
		Alpha:          cfg.Alpha,
		Mode:           cfg.Mode,
		FixedRank:      cfg.FixedRank,
		EnergyFrac:     cfg.EnergyFrac,
		Workers:        cfg.Workers,
		Family:         cfg.Family,
		Builder:        cfg.Builder,
		RSVDOversample: cfg.RSVDOversample,
		RSVDPowerIters: cfg.RSVDPowerIters,
		RSVDSeed:       cfg.RSVDSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	return &Cluster{
		monitors:  monitors,
		detector:  det,
		flowOwner: flowOwner,
		flowSlot:  flowSlot,
		gen:       gen,
		family:    cfg.Family,
		sketchLen: sketchLen,
		windowLen: cfg.WindowLen,
	}, nil
}

// Monitors returns the cluster's monitors.
func (c *Cluster) Monitors() []*Monitor { return c.monitors }

// Detector returns the NOC detector.
func (c *Cluster) Detector() *Detector { return c.detector }

// Generator returns the shared random-projection generator, nil when the
// cluster runs the FD family (which has no projection).
func (c *Cluster) Generator() *randproj.Generator { return c.gen }

// Update feeds interval t's full volume vector to the owning monitors.
func (c *Cluster) Update(t int64, volumes []float64) error {
	if len(volumes) != len(c.flowOwner) {
		return fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(volumes), len(c.flowOwner))
	}
	// Scatter volumes to per-monitor vectors.
	per := make([][]float64, len(c.monitors))
	for i, mon := range c.monitors {
		per[i] = make([]float64, mon.NumFlows())
	}
	for j, v := range volumes {
		per[c.flowOwner[j]][c.flowSlot[j]] = v
	}
	for i, mon := range c.monitors {
		if err := mon.Update(t, per[i]); err != nil {
			return fmt.Errorf("monitor %d: %w", i, err)
		}
	}
	c.updates++
	return nil
}

// Warm reports whether the monitors have seen a full window of intervals —
// before that, models built from partial sketches are unreliable and Step
// skips detection.
func (c *Cluster) Warm() bool { return c.updates >= c.windowLen }

// Fetch gathers every monitor's report — flow-indexed sketch and mean arrays
// for the randproj family, per-monitor Blocks for FD — the in-process
// FetchFunc.
func (c *Cluster) Fetch() (Fetch, error) {
	m := len(c.flowOwner)
	if c.family == sketch.FamilyFD {
		f := Fetch{Blocks: make([]sketch.Snapshot, 0, len(c.monitors))}
		for _, mon := range c.monitors {
			rep := mon.Report()
			if err := rep.Validate(c.sketchLen); err != nil {
				return Fetch{}, err
			}
			f.Blocks = append(f.Blocks, rep)
			if rep.Interval > f.Interval {
				f.Interval = rep.Interval
			}
		}
		return f, nil
	}
	f := Fetch{Sketches: make([][]float64, m), Means: make([]float64, m)}
	for _, mon := range c.monitors {
		rep := mon.Report()
		if err := rep.Validate(c.sketchLen); err != nil {
			return Fetch{}, err
		}
		for i, id := range rep.FlowIDs {
			if id < 0 || id >= m {
				return Fetch{}, fmt.Errorf("%w: reported flow %d of %d", ErrInput, id, m)
			}
			f.Sketches[id] = rep.Sketches[i]
			f.Means[id] = rep.Means[i]
		}
		if rep.Interval > f.Interval {
			f.Interval = rep.Interval
		}
	}
	for j, s := range f.Sketches {
		if s == nil {
			return Fetch{}, fmt.Errorf("%w: no monitor reported flow %d", ErrInput, j)
		}
	}
	return f, nil
}

// Step runs one full interval: update all monitors with the volumes, then
// drive the lazy detection protocol on the same measurement vector. During
// warm-up (fewer than WindowLen intervals seen) detection is skipped and a
// zero Decision is returned.
func (c *Cluster) Step(t int64, volumes []float64) (Decision, error) {
	if err := c.Update(t, volumes); err != nil {
		return Decision{}, err
	}
	if !c.Warm() {
		return Decision{}, nil
	}
	return c.detector.Observe(volumes, c.Fetch)
}
