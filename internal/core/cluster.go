package core

import (
	"fmt"

	"streampca/internal/randproj"
)

// ClusterConfig parameterizes an in-process cluster: several monitors
// partitioning the flow space plus one NOC detector. It is the simplest way
// to run the full algorithm without the network layer, and what the
// evaluation harness uses.
type ClusterConfig struct {
	// NumFlows is m.
	NumFlows int
	// NumMonitors partitions the flows round-robin across monitors.
	NumMonitors int
	// WindowLen is n.
	WindowLen int
	// Epsilon is the VH parameter ε.
	Epsilon float64
	// Alpha is the detector's false-alarm rate.
	Alpha float64
	// Sketch configures the shared random projection (Seed, SketchLen,
	// Dist, …). WindowLen is filled from the cluster's if unset.
	Sketch randproj.Config
	// Rank configures rank selection (see DetectorConfig).
	Mode       RankMode
	FixedRank  int
	EnergyFrac float64
	// Workers bounds the goroutines each monitor and the detector use for
	// their sharded hot paths; 0 (or negative) selects
	// runtime.GOMAXPROCS(0). Results are identical for any value.
	Workers int
}

// Cluster is an in-process assembly of monitors and a NOC detector.
type Cluster struct {
	monitors []*Monitor
	detector *Detector
	// flowOwner[j] is the monitor index owning flow j; flowSlot[j] is the
	// flow's position within that monitor.
	flowOwner []int
	flowSlot  []int
	gen       *randproj.Generator
	windowLen int
	updates   int
}

// NewCluster builds the monitors and detector.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, cfg.NumFlows)
	}
	if cfg.NumMonitors < 1 || cfg.NumMonitors > cfg.NumFlows {
		return nil, fmt.Errorf("%w: %d monitors for %d flows", ErrConfig, cfg.NumMonitors, cfg.NumFlows)
	}
	sketchCfg := cfg.Sketch
	if sketchCfg.WindowLen == 0 {
		sketchCfg.WindowLen = cfg.WindowLen
	}
	gen, err := randproj.NewGenerator(sketchCfg)
	if err != nil {
		return nil, fmt.Errorf("generator: %w", err)
	}

	// Round-robin flow assignment.
	assign := make([][]int, cfg.NumMonitors)
	flowOwner := make([]int, cfg.NumFlows)
	flowSlot := make([]int, cfg.NumFlows)
	for j := 0; j < cfg.NumFlows; j++ {
		mIdx := j % cfg.NumMonitors
		flowOwner[j] = mIdx
		flowSlot[j] = len(assign[mIdx])
		assign[mIdx] = append(assign[mIdx], j)
	}

	monitors := make([]*Monitor, cfg.NumMonitors)
	for i := range monitors {
		mon, err := NewMonitor(MonitorConfig{
			FlowIDs:   assign[i],
			WindowLen: cfg.WindowLen,
			Epsilon:   cfg.Epsilon,
			Gen:       gen,
			Workers:   cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("monitor %d: %w", i, err)
		}
		monitors[i] = mon
	}

	det, err := NewDetector(DetectorConfig{
		NumFlows:   cfg.NumFlows,
		WindowLen:  cfg.WindowLen,
		SketchLen:  gen.SketchLen(),
		Alpha:      cfg.Alpha,
		Mode:       cfg.Mode,
		FixedRank:  cfg.FixedRank,
		EnergyFrac: cfg.EnergyFrac,
		Workers:    cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("detector: %w", err)
	}
	return &Cluster{
		monitors:  monitors,
		detector:  det,
		flowOwner: flowOwner,
		flowSlot:  flowSlot,
		gen:       gen,
		windowLen: cfg.WindowLen,
	}, nil
}

// Monitors returns the cluster's monitors.
func (c *Cluster) Monitors() []*Monitor { return c.monitors }

// Detector returns the NOC detector.
func (c *Cluster) Detector() *Detector { return c.detector }

// Generator returns the shared random-projection generator.
func (c *Cluster) Generator() *randproj.Generator { return c.gen }

// Update feeds interval t's full volume vector to the owning monitors.
func (c *Cluster) Update(t int64, volumes []float64) error {
	if len(volumes) != len(c.flowOwner) {
		return fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(volumes), len(c.flowOwner))
	}
	// Scatter volumes to per-monitor vectors.
	per := make([][]float64, len(c.monitors))
	for i, mon := range c.monitors {
		per[i] = make([]float64, mon.NumFlows())
	}
	for j, v := range volumes {
		per[c.flowOwner[j]][c.flowSlot[j]] = v
	}
	for i, mon := range c.monitors {
		if err := mon.Update(t, per[i]); err != nil {
			return fmt.Errorf("monitor %d: %w", i, err)
		}
	}
	c.updates++
	return nil
}

// Warm reports whether the monitors have seen a full window of intervals —
// before that, models built from partial sketches are unreliable and Step
// skips detection.
func (c *Cluster) Warm() bool { return c.updates >= c.windowLen }

// Fetch gathers every monitor's report into flow-indexed sketch and mean
// arrays — the in-process FetchFunc.
func (c *Cluster) Fetch() (Fetch, error) {
	m := len(c.flowOwner)
	f := Fetch{Sketches: make([][]float64, m), Means: make([]float64, m)}
	for _, mon := range c.monitors {
		rep := mon.Report()
		if err := rep.Validate(c.gen.SketchLen()); err != nil {
			return Fetch{}, err
		}
		for i, id := range rep.FlowIDs {
			if id < 0 || id >= m {
				return Fetch{}, fmt.Errorf("%w: reported flow %d of %d", ErrInput, id, m)
			}
			f.Sketches[id] = rep.Sketches[i]
			f.Means[id] = rep.Means[i]
		}
		if rep.Interval > f.Interval {
			f.Interval = rep.Interval
		}
	}
	for j, s := range f.Sketches {
		if s == nil {
			return Fetch{}, fmt.Errorf("%w: no monitor reported flow %d", ErrInput, j)
		}
	}
	return f, nil
}

// Step runs one full interval: update all monitors with the volumes, then
// drive the lazy detection protocol on the same measurement vector. During
// warm-up (fewer than WindowLen intervals seen) detection is skipped and a
// zero Decision is returned.
func (c *Cluster) Step(t int64, volumes []float64) (Decision, error) {
	if err := c.Update(t, volumes); err != nil {
		return Decision{}, err
	}
	if !c.Warm() {
		return Decision{}, nil
	}
	return c.detector.Observe(volumes, c.Fetch)
}
