package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/pca"
	"streampca/internal/randproj"
)

func testGen(t *testing.T, l, window int) *randproj.Generator {
	t.Helper()
	g, err := randproj.NewGenerator(randproj.Config{Seed: 1234, SketchLen: l, WindowLen: window})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// lowRankStream produces n rows of m-flow volumes near a rank-k subspace.
func lowRankStream(rng *rand.Rand, n, m, k int, noise float64) *mat.Matrix {
	basis := mat.NewMatrix(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			basis.Set(i, j, rng.NormFloat64())
		}
	}
	x := mat.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		coeff := make([]float64, k)
		for j := range coeff {
			coeff[j] = 10 * rng.NormFloat64()
		}
		row := x.RowView(i)
		for a := 0; a < m; a++ {
			var s float64
			for j := 0; j < k; j++ {
				s += basis.At(a, j) * coeff[j]
			}
			v := 1000 + s + noise*rng.NormFloat64()
			if v < 0 {
				v = 0
			}
			row[a] = v
		}
	}
	return x
}

func TestNewMonitorValidation(t *testing.T) {
	g := testGen(t, 8, 64)
	tests := []struct {
		name string
		cfg  MonitorConfig
	}{
		{name: "no flows", cfg: MonitorConfig{WindowLen: 64, Epsilon: 0.1, Gen: g}},
		{name: "nil gen", cfg: MonitorConfig{FlowIDs: []int{0}, WindowLen: 64, Epsilon: 0.1}},
		{name: "negative flow", cfg: MonitorConfig{FlowIDs: []int{-1}, WindowLen: 64, Epsilon: 0.1, Gen: g}},
		{name: "duplicate flow", cfg: MonitorConfig{FlowIDs: []int{2, 2}, WindowLen: 64, Epsilon: 0.1, Gen: g}},
		{name: "bad epsilon", cfg: MonitorConfig{FlowIDs: []int{0}, WindowLen: 64, Epsilon: 2, Gen: g}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMonitor(tt.cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
	mon, err := NewMonitor(MonitorConfig{FlowIDs: []int{3, 1}, WindowLen: 64, Epsilon: 0.1, Gen: g})
	if err != nil {
		t.Fatal(err)
	}
	if mon.NumFlows() != 2 {
		t.Fatalf("NumFlows = %d", mon.NumFlows())
	}
	ids := mon.FlowIDs()
	ids[0] = 99
	if mon.FlowIDs()[0] == 99 {
		t.Fatal("FlowIDs must return a copy")
	}
}

func TestMonitorUpdateAndReport(t *testing.T) {
	g := testGen(t, 6, 32)
	mon, err := NewMonitor(MonitorConfig{FlowIDs: []int{0, 1, 2}, WindowLen: 32, Epsilon: 0.05, Gen: g})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Update(1, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatalf("short volumes: %v", err)
	}
	for i := 1; i <= 40; i++ {
		if err := mon.Update(int64(i), []float64{float64(i), 100, float64(2 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Now() != 40 {
		t.Fatalf("now = %d", mon.Now())
	}
	rep := mon.Report()
	if rep.Interval != 40 || len(rep.Sketches) != 3 || len(rep.Means) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if err := rep.Validate(6); err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(7); !errors.Is(err, ErrInput) {
		t.Fatalf("wrong sketch len must fail: %v", err)
	}
	// Constant flow 1: mean 100, sketch finite.
	if math.Abs(rep.Means[1]-100) > 1e-9 {
		t.Fatalf("mean of constant flow = %v", rep.Means[1])
	}
	for _, v := range rep.Sketches[1] {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite sketch")
		}
	}
	if rep.Counts[0] != 32 {
		t.Fatalf("count = %d, want window 32", rep.Counts[0])
	}
}

func TestNewDetectorValidation(t *testing.T) {
	base := DetectorConfig{NumFlows: 5, WindowLen: 100, SketchLen: 10, Alpha: 0.01, FixedRank: 2}
	if _, err := NewDetector(base); err != nil {
		t.Fatal(err)
	}
	bad := []DetectorConfig{
		{NumFlows: 0, WindowLen: 100, SketchLen: 10, Alpha: 0.01},
		{NumFlows: 5, WindowLen: 1, SketchLen: 10, Alpha: 0.01},
		{NumFlows: 5, WindowLen: 100, SketchLen: 0, Alpha: 0.01},
		{NumFlows: 5, WindowLen: 100, SketchLen: 10, Alpha: 0},
		{NumFlows: 5, WindowLen: 100, SketchLen: 10, Alpha: 0.01, FixedRank: 9},
		{NumFlows: 5, WindowLen: 100, SketchLen: 10, Alpha: 0.01, Mode: RankEnergy, EnergyFrac: 2},
		{NumFlows: 5, WindowLen: 100, SketchLen: 10, Alpha: 0.01, Mode: RankMode(42)},
	}
	for i, cfg := range bad {
		if _, err := NewDetector(cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: want ErrConfig, got %v", i, err)
		}
	}
}

func TestRankModeString(t *testing.T) {
	for mode, want := range map[RankMode]string{
		RankFixed: "fixed", RankThreeSigma: "3sigma", RankEnergy: "energy", RankMode(9): "unknown",
	} {
		if got := mode.String(); got != want {
			t.Fatalf("%d.String() = %q", int(mode), got)
		}
	}
}

func TestAssembleSketchMatrix(t *testing.T) {
	if _, err := AssembleSketchMatrix(nil, 3); !errors.Is(err, ErrInput) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := AssembleSketchMatrix([][]float64{nil}, 3); !errors.Is(err, ErrInput) {
		t.Fatalf("missing flow: %v", err)
	}
	if _, err := AssembleSketchMatrix([][]float64{{1, 2}}, 3); !errors.Is(err, ErrInput) {
		t.Fatalf("short sketch: %v", err)
	}
	if _, err := AssembleSketchMatrix([][]float64{{1, math.NaN(), 3}}, 3); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN: %v", err)
	}
	z, err := AssembleSketchMatrix([][]float64{{1, 2}, {3, 4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rows() != 2 || z.Cols() != 2 || z.At(0, 1) != 3 || z.At(1, 0) != 2 {
		t.Fatalf("assembled = %v", z)
	}
}

// driveCluster feeds a measurement matrix through a cluster's monitors.
func driveCluster(t *testing.T, c *Cluster, x *mat.Matrix) {
	t.Helper()
	for i := 0; i < x.Rows(); i++ {
		if err := c.Update(int64(i+1), x.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDetectorMatchesExactPCA(t *testing.T) {
	// Theorem 2: with a generous sketch length the sketch-based anomaly
	// distance approximates the exact PCA distance.
	rng := rand.New(rand.NewSource(55))
	n, m, k, l := 256, 9, 3, 200
	x := lowRankStream(rng, n, m, k, 2)

	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 3, WindowLen: n, Epsilon: 0.01, Alpha: 0.01,
		Sketch:    randproj.Config{Seed: 7, SketchLen: l},
		Mode:      RankFixed,
		FixedRank: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCluster(t, cl, x)
	f, err := cl.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if f.Interval != int64(n) {
		t.Fatalf("fetch interval = %d", f.Interval)
	}
	if err := cl.Detector().RebuildModel(f.Sketches, f.Means, f.Interval); err != nil {
		t.Fatal(err)
	}

	exactModel, err := pca.Fit(x)
	if err != nil {
		t.Fatal(err)
	}
	exactDet, err := pca.NewDetector(exactModel, k, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	// Lemma 5: leading singular values preserved within a loose (1±δ) band.
	sk := cl.Detector().Model()
	for j := 0; j < k; j++ {
		ratio := sk.Singular[j] / exactModel.Singular[j]
		if ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("λ̂_%d/η_%d = %v, want ≈1", j, j, ratio)
		}
	}

	// Distances agree within a modest relative error on typical vectors.
	var relErrSum float64
	trials := 50
	for i := 0; i < trials; i++ {
		row := x.Row(rng.Intn(n))
		de, err := exactDet.Distance(row)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := cl.Detector().Distance(row)
		if err != nil {
			t.Fatal(err)
		}
		if de > 1e-9 {
			relErrSum += math.Abs(ds-de) / de
		}
	}
	if avg := relErrSum / float64(trials); avg > 0.35 {
		t.Fatalf("mean relative distance error = %v", avg)
	}

	// Thresholds land in the same ballpark.
	dt, err := cl.Detector().Threshold()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := dt / exactDet.Threshold(); ratio < 0.5 || ratio > 2 {
		t.Fatalf("δ/Q = %v", ratio)
	}
}

func TestDetectorNoModelErrors(t *testing.T) {
	det, err := NewDetector(DetectorConfig{NumFlows: 3, WindowLen: 10, SketchLen: 4, Alpha: 0.01, FixedRank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if det.HasModel() {
		t.Fatal("fresh detector must have no model")
	}
	if _, err := det.Distance([]float64{1, 2, 3}); !errors.Is(err, ErrNoModel) {
		t.Fatalf("distance: %v", err)
	}
	if _, err := det.Threshold(); !errors.Is(err, ErrNoModel) {
		t.Fatalf("threshold: %v", err)
	}
}

func TestDetectorRebuildValidation(t *testing.T) {
	det, err := NewDetector(DetectorConfig{NumFlows: 2, WindowLen: 10, SketchLen: 2, Alpha: 0.01, FixedRank: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok := [][]float64{{1, 2}, {3, 4}}
	if err := det.RebuildModel(ok[:1], []float64{1}, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("wrong counts: %v", err)
	}
	if err := det.RebuildModel(ok, []float64{1, math.Inf(1)}, 0); !errors.Is(err, ErrInput) {
		t.Fatalf("bad mean: %v", err)
	}
	if err := det.RebuildModel(ok, []float64{1, 2}, 5); err != nil {
		t.Fatal(err)
	}
	if det.Model().BuiltAt != 5 {
		t.Fatalf("BuiltAt = %d", det.Model().BuiltAt)
	}
	if _, err := det.Distance([]float64{1, math.NaN()}); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN measurement: %v", err)
	}
}

func TestLazyProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n, m, k := 200, 8, 2
	x := lowRankStream(rng, n, m, k, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 2, WindowLen: n, Epsilon: 0.01, Alpha: 0.005,
		Sketch:    randproj.Config{Seed: 3, SketchLen: 64},
		FixedRank: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCluster(t, cl, x)
	det := cl.Detector()

	// First observation builds the model (one fetch).
	dec, err := det.Observe(x.Row(n-1), cl.Fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Refreshed {
		t.Fatal("first observation must refresh")
	}
	_, fetches0, _ := det.Stats()
	if fetches0 != 1 {
		t.Fatalf("fetches = %d", fetches0)
	}

	// Typical vectors: no further fetches.
	var normals int
	for i := 0; i < 30; i++ {
		dec, err := det.Observe(x.Row(rng.Intn(n)), cl.Fetch)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Anomalous {
			normals++
		}
	}
	_, fetches1, _ := det.Stats()
	if normals < 25 {
		t.Fatalf("only %d/30 typical vectors below threshold", normals)
	}
	if fetches1 > fetches0+5 {
		t.Fatalf("lazy protocol fetched %d times on normal traffic", fetches1-fetches0)
	}

	// A gross outlier must fetch, re-check, and alarm.
	outlier := x.Row(0)
	for j := range outlier {
		outlier[j] += 5000 * math.Pow(-1, float64(j))
	}
	dec, err = det.Observe(outlier, cl.Fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Anomalous || !dec.Refreshed {
		t.Fatalf("outlier decision = %+v", dec)
	}
	_, fetches2, alarms := det.Stats()
	if fetches2 != fetches1+1 || alarms < 1 {
		t.Fatalf("fetches %d→%d, alarms %d", fetches1, fetches2, alarms)
	}

	if _, err := det.Observe(outlier, nil); !errors.Is(err, ErrInput) {
		t.Fatalf("nil fetch: %v", err)
	}
}

func TestLazyProtocolFetchError(t *testing.T) {
	det, err := NewDetector(DetectorConfig{NumFlows: 2, WindowLen: 10, SketchLen: 2, Alpha: 0.01, FixedRank: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("monitor unreachable")
	_, err = det.Observe([]float64{1, 2}, func() (Fetch, error) {
		return Fetch{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("fetch failure must propagate, got %v", err)
	}
}

func TestDegradedFetchFlagsDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const m, n = 6, 128
	x := lowRankStream(rng, n, m, 2, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 2, WindowLen: n, Epsilon: 0.01, Alpha: 0.01,
		Sketch:    randproj.Config{Seed: 9, SketchLen: 48},
		FixedRank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCluster(t, cl, x)
	det := cl.Detector()

	degradedFetch := func() (Fetch, error) {
		f, err := cl.Fetch()
		if err != nil {
			return Fetch{}, err
		}
		f.Degraded = true
		f.StaleFlows = 2
		return f, nil
	}
	// First observation refreshes through the degraded fetch.
	dec, err := det.Observe(x.Row(n-1), degradedFetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Refreshed || !dec.Degraded || dec.StaleFlows != 2 {
		t.Fatalf("degraded refresh decision = %+v", dec)
	}
	if mod := det.Model(); !mod.Degraded || mod.StaleFlows != 2 {
		t.Fatalf("model = degraded %t, stale %d", mod.Degraded, mod.StaleFlows)
	}
	// Later observations keep the flag while the degraded model is in force.
	dec, err = det.Observe(x.Row(0), cl.Fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Degraded {
		t.Fatalf("flag must persist with the degraded model: %+v", dec)
	}
	// A full-coverage refresh clears it.
	outlier := x.Row(0)
	for j := range outlier {
		outlier[j] += 1e6
	}
	dec, err = det.Observe(outlier, cl.Fetch)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Refreshed || dec.Degraded || dec.StaleFlows != 0 {
		t.Fatalf("healthy refresh decision = %+v", dec)
	}
}

func TestRankModesOnSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, m, k := 300, 10, 3
	x := lowRankStream(rng, n, m, k, 0.5)
	for _, mode := range []RankMode{RankFixed, RankThreeSigma, RankEnergy} {
		cl, err := NewCluster(ClusterConfig{
			NumFlows: m, NumMonitors: 1, WindowLen: n, Epsilon: 0.01, Alpha: 0.01,
			Sketch:    randproj.Config{Seed: 5, SketchLen: 128},
			Mode:      mode,
			FixedRank: k,
		})
		if err != nil {
			t.Fatal(err)
		}
		driveCluster(t, cl, x)
		f, err := cl.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Detector().RebuildModel(f.Sketches, f.Means, f.Interval); err != nil {
			t.Fatal(err)
		}
		r := cl.Detector().Model().Rank
		if r < 0 || r > m {
			t.Fatalf("%v: rank %d", mode, r)
		}
		if mode == RankFixed && r != k {
			t.Fatalf("fixed rank = %d, want %d", r, k)
		}
		if mode == RankEnergy && (r < 1 || r > k+2) {
			t.Fatalf("energy rank = %d for rank-%d data", r, k)
		}
	}
}

func TestAttribute(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n, m, k := 300, 10, 3
	x := lowRankStream(rng, n, m, k, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 2, WindowLen: n, Epsilon: 0.01, Alpha: 0.01,
		Sketch: randproj.Config{Seed: 8, SketchLen: 128}, FixedRank: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := cl.Detector()
	if _, err := det.Attribute(x.Row(0), 3); !errors.Is(err, ErrNoModel) {
		t.Fatalf("no model: %v", err)
	}
	driveCluster(t, cl, x)
	f, err := cl.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if err := det.RebuildModel(f.Sketches, f.Means, f.Interval); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Attribute([]float64{1}, 3); !errors.Is(err, ErrInput) {
		t.Fatalf("short vector: %v", err)
	}

	// Perturb two flows heavily: attribution must rank them first.
	bad := x.Row(0)
	bad[2] += 9000
	bad[7] += 7000
	top, err := det.Attribute(bad, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("topK = %d entries", len(top))
	}
	got := map[int]bool{top[0].Flow: true, top[1].Flow: true}
	if !got[2] || !got[7] {
		t.Fatalf("attribution = %+v, want flows 2 and 7", top)
	}
	if top[0].Share < top[1].Share {
		t.Fatal("contributions must be sorted descending")
	}
	// Shares across all flows sum to 1.
	all, err := det.Attribute(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range all {
		sum += c.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// ‖residual‖ from attribution equals the reported distance.
	var norm2 float64
	for _, c := range all {
		norm2 += c.Residual * c.Residual
	}
	dist, err := det.Distance(bad)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Sqrt(norm2)-dist) > 1e-6*math.Max(1, dist) {
		t.Fatalf("‖residual‖ = %v, distance = %v", math.Sqrt(norm2), dist)
	}
}

func TestNewClusterValidation(t *testing.T) {
	base := ClusterConfig{
		NumFlows: 4, NumMonitors: 2, WindowLen: 32, Epsilon: 0.1, Alpha: 0.01,
		Sketch: randproj.Config{Seed: 1, SketchLen: 8}, FixedRank: 1,
	}
	if _, err := NewCluster(base); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.NumFlows = 0
	if _, err := NewCluster(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("flows: %v", err)
	}
	bad = base
	bad.NumMonitors = 5
	if _, err := NewCluster(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("monitors: %v", err)
	}
	bad = base
	bad.Sketch.SketchLen = 0
	if _, err := NewCluster(bad); err == nil {
		t.Fatal("bad sketch config must fail")
	}
}

func TestClusterPartitioningMatchesSingleMonitor(t *testing.T) {
	// The same stream through 1 monitor and through 4 monitors must yield
	// identical sketches at the NOC (shared randomness).
	rng := rand.New(rand.NewSource(77))
	n, m := 128, 8
	x := lowRankStream(rng, n, m, 2, 1)
	mk := func(monitors int) ([][]float64, []float64) {
		cl, err := NewCluster(ClusterConfig{
			NumFlows: m, NumMonitors: monitors, WindowLen: n, Epsilon: 0.05, Alpha: 0.01,
			Sketch: randproj.Config{Seed: 21, SketchLen: 16}, FixedRank: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		driveCluster(t, cl, x)
		f, err := cl.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		return f.Sketches, f.Means
	}
	s1, m1 := mk(1)
	s4, m4 := mk(4)
	for j := 0; j < m; j++ {
		if math.Abs(m1[j]-m4[j]) > 1e-9 {
			t.Fatalf("means differ at flow %d", j)
		}
		for k := range s1[j] {
			if math.Abs(s1[j][k]-s4[j][k]) > 1e-9 {
				t.Fatalf("sketches differ at flow %d k %d", j, k)
			}
		}
	}
}

func TestClusterStepEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, m, k := 200, 9, 2
	x := lowRankStream(rng, 3*n, m, k, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 3, WindowLen: n, Epsilon: 0.02, Alpha: 0.002,
		Sketch: randproj.Config{Seed: 11, SketchLen: 80}, FixedRank: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	var alarms, steps int
	spikeAt := 2*n + 50
	var spikeDec Decision
	for i := 0; i < x.Rows(); i++ {
		row := x.Row(i)
		observed := row
		if i == spikeAt {
			// Structured anomaly outside the rank-k subspace. The clean
			// row still feeds the monitors (an operator quarantines
			// flagged intervals from training — the poisoning problem the
			// paper cites from Rubinstein et al.), while the NOC observes
			// the anomalous measurement.
			observed = append([]float64(nil), row...)
			observed[0] += 8000
			observed[4] += 6000
		}
		if err := cl.Update(int64(i+1), row); err != nil {
			t.Fatal(err)
		}
		dec, err := cl.Detector().Observe(observed, cl.Fetch)
		if err != nil {
			t.Fatal(err)
		}
		if i >= n { // past warm-up
			steps++
			if dec.Anomalous {
				alarms++
			}
		}
		if i == spikeAt {
			spikeDec = dec
		}
	}
	if !spikeDec.Anomalous {
		t.Fatalf("injected anomaly missed: %+v", spikeDec)
	}
	if rate := float64(alarms) / float64(steps); rate > 0.25 {
		t.Fatalf("alarm rate %v too high", rate)
	}
	if err := cl.Update(1, x.Row(0)); err == nil {
		t.Fatal("out-of-order update must fail")
	}
	if err := cl.Update(9999, []float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short vector: %v", err)
	}
}
