package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"streampca/internal/anomography"
	"streampca/internal/randproj"
)

// identifyCluster builds a warmed, modeled cluster over a low-rank stream.
func identifyCluster(t *testing.T, workers int) (*Cluster, *Detector) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	n, m, k := 300, 10, 3
	x := lowRankStream(rng, n, m, k, 1)
	cl, err := NewCluster(ClusterConfig{
		NumFlows: m, NumMonitors: 2, WindowLen: n, Epsilon: 0.01, Alpha: 0.01,
		Sketch: randproj.Config{Seed: 8, SketchLen: 128}, FixedRank: k,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveCluster(t, cl, x)
	f, err := cl.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	det := cl.Detector()
	if err := det.RebuildModel(f.Sketches, f.Means, f.Interval); err != nil {
		t.Fatal(err)
	}
	return cl, det
}

func TestIdentify(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	base := lowRankStream(rng, 300, 10, 3, 1).Row(0)
	_, det := identifyCluster(t, 0)

	if _, err := det.Identify([]float64{1}, 3); !errors.Is(err, ErrInput) {
		t.Fatalf("short vector: %v", err)
	}

	// A heavy two-flow injection: Identify must return exactly those flows,
	// amounts close to the injections, and push the residual under the
	// alarm threshold.
	bad := append([]float64(nil), base...)
	bad[2] += 9000
	bad[7] += 7000
	id, err := det.Identify(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(id.Flows) != 2 {
		t.Fatalf("identified %+v, want flows 2 and 7", id.Flows)
	}
	got := map[int]float64{}
	for _, f := range id.Flows {
		got[f.Flow] = f.Amount
	}
	for flow, want := range map[int]float64{2: 9000, 7: 7000} {
		amt, ok := got[flow]
		if !ok {
			t.Fatalf("flow %d missing from %+v", flow, id.Flows)
		}
		if math.Abs(amt-want)/want > 0.05 {
			t.Fatalf("flow %d amount %g, want ≈%g", flow, amt, want)
		}
	}
	if id.Flows[0].Flow != 2 {
		t.Fatalf("heavier injection must rank first: %+v", id.Flows)
	}
	thr, err := det.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	if id.InitialSPE <= thr {
		t.Fatalf("test premise broken: injected SPE %g under threshold %g", id.InitialSPE, thr)
	}
	if id.ResidualSPE > thr {
		t.Fatalf("pursuit stopped above the Q-threshold: %g > %g (stop %s)", id.ResidualSPE, thr, id.Stop)
	}
	if id.Stop != string(anomography.StopThreshold) {
		t.Fatalf("stop %q, want threshold", id.Stop)
	}

	// A quiet measurement identifies nothing.
	quiet, err := det.Identify(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(quiet.Flows) != 0 {
		t.Fatalf("quiet interval identified %+v", quiet.Flows)
	}
}

func TestIdentifyNoModel(t *testing.T) {
	det, err := NewDetector(DetectorConfig{NumFlows: 4, WindowLen: 8, SketchLen: 4, Alpha: 0.01, FixedRank: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Identify(make([]float64, 4), 0); !errors.Is(err, ErrNoModel) {
		t.Fatalf("no model: %v", err)
	}
}

// TestIdentifyDeterministicAcrossWorkers pins the §14 guarantee end to end:
// model build, projection and pursuit are bit-identical for any worker
// count, so the full identification must be deep-equal.
func TestIdentifyDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	bad := lowRankStream(rng, 300, 10, 3, 1).Row(0)
	bad[2] += 9000
	bad[7] += 7000
	_, det1 := identifyCluster(t, 1)
	_, det3 := identifyCluster(t, 3)
	id1, err := det1.Identify(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	id3, err := det3.Identify(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(id1, id3) {
		t.Fatalf("identification differs across worker counts:\n 1: %+v\n 3: %+v", id1, id3)
	}
}
