package core

import (
	"fmt"
	"sort"
)

// FlowContribution describes one flow's share of an anomalous residual.
type FlowContribution struct {
	// Flow is the global flow index.
	Flow int
	// Residual is the flow's component of the anomalous-subspace residual
	// (signed: positive = more traffic than the normal pattern predicts).
	Residual float64
	// Share is Residual²/‖residual‖², in [0, 1].
	Share float64
}

// Attribute decomposes a measurement into its normal and anomalous parts
// (paper eq. 4) and returns the topK flows ranked by their contribution to
// the anomalous residual — the starting point for diagnosing which OD flows
// drive an alarm. topK ≤ 0 returns all flows.
func (d *Detector) Attribute(x []float64, topK int) ([]FlowContribution, error) {
	if d.model == nil {
		return nil, ErrNoModel
	}
	m := d.cfg.NumFlows
	if len(x) != m {
		return nil, fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(x), m)
	}
	// y = x − μ; residual = y − Σ_{j≤r} (â_jᵀy)·â_j.
	y := make([]float64, m)
	for j, v := range x {
		y[j] = v - d.model.Means[j]
	}
	residual := append([]float64(nil), y...)
	for j := 0; j < d.model.Rank; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += d.model.Components.At(i, j) * y[i]
		}
		for i := 0; i < m; i++ {
			residual[i] -= s * d.model.Components.At(i, j)
		}
	}
	var total float64
	for _, v := range residual {
		total += v * v
	}
	out := make([]FlowContribution, m)
	for i, v := range residual {
		share := 0.0
		if total > 0 {
			share = v * v / total
		}
		out[i] = FlowContribution{Flow: i, Residual: v, Share: share}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Share > out[b].Share })
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out, nil
}
