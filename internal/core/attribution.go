package core

import (
	"sort"
)

// FlowContribution describes one flow's share of an anomalous residual.
type FlowContribution struct {
	// Flow is the global flow index.
	Flow int
	// Residual is the flow's component of the anomalous-subspace residual
	// (signed: positive = more traffic than the normal pattern predicts).
	Residual float64
	// Share is Residual²/‖residual‖², in [0, 1].
	Share float64
}

// Attribute decomposes a measurement into its normal and anomalous parts
// (paper eq. 4) and returns the topK flows ranked by their contribution to
// the anomalous residual — the raw view of which OD flows drive an alarm.
// The projection runs on the same blocked-tile kernels as Identify, so it
// is bit-identical at any worker count. topK ≤ 0 returns all flows.
//
// Attribute ranks raw residual coordinates; when PCA correlates flows, the
// projection smears a single-flow spike across its correlated peers and
// this ranking can misattribute. Identify undoes the smear — prefer it for
// diagnosis and treat Attribute as the cheap residual inspection.
func (d *Detector) Attribute(x []float64, topK int) ([]FlowContribution, error) {
	if d.model == nil {
		return nil, ErrNoModel
	}
	residual, err := d.anomalousResidual(x, d.principal())
	if err != nil {
		return nil, err
	}
	var total float64
	for _, v := range residual {
		total += v * v
	}
	out := make([]FlowContribution, len(residual))
	for i, v := range residual {
		share := 0.0
		if total > 0 {
			share = v * v / total
		}
		out[i] = FlowContribution{Flow: i, Residual: v, Share: share}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Share > out[b].Share })
	if topK > 0 && topK < len(out) {
		out = out[:topK]
	}
	return out, nil
}
