// Package core implements the paper's primary contribution: the sketch-based
// streaming PCA algorithm for network-wide traffic anomaly detection.
//
// A Monitor is the local-monitor half (Fig. 2 left; §IV-A/B): it maintains a
// streaming summary — a sketch.Sketcher — over its assigned flows. The
// default family is the paper's random projection carried by per-flow
// variance histograms (O(w·log n) update time, O(w·log² n) space for w
// flows); the Frequent Directions family trades the sliding window for a
// deterministic error bound in O(ℓ·w) space.
//
// A Detector is the NOC half (Fig. 2 right; §IV-C/D/E): it assembles the
// per-flow sketches into the l×m matrix Ẑ, runs PCA on Ẑ (O(m²·l) =
// O(m²·log n) per rebuild instead of O(m²·n) — or O(m·ℓ²) per FD block with
// no m×m eigensolve at all), thresholds the anomaly distance with the
// Q-statistic, and drives the lazy model-refresh protocol: sketches are
// pulled from monitors only when the current measurement exceeds the
// (possibly stale) threshold.
package core

import (
	"errors"

	"streampca/internal/randproj"
	"streampca/internal/sketch"
	"streampca/internal/vh"
)

// Errors returned by the package. ErrConfig and ErrInput are the
// internal/sketch sentinels re-exported, so errors.Is checks hold across the
// core/sketch boundary (SketchReport is an alias of sketch.Snapshot and its
// Validate wraps the sketch-side sentinel).
var (
	// ErrConfig indicates an invalid configuration.
	ErrConfig = sketch.ErrConfig
	// ErrInput indicates structurally invalid runtime input.
	ErrInput = sketch.ErrInput
	// ErrNoModel indicates a detector query before any model was built.
	ErrNoModel = errors.New("core: no model built yet")
)

// MonitorConfig parameterizes a local monitor.
type MonitorConfig struct {
	// Family selects the sketcher implementation; the zero value is the
	// paper's random projection.
	Family sketch.Family
	// FlowIDs lists the global flow indices this monitor is responsible
	// for. Required, non-empty, unique.
	FlowIDs []int
	// WindowLen is n, the sliding-window length in intervals (randproj; the
	// FD family summarizes the full stream prefix).
	WindowLen int
	// Epsilon is the VH approximation parameter ε ∈ (0, 1) (randproj only).
	Epsilon float64
	// Gen is the shared random-number generator; required for the randproj
	// family so sketches from different monitors combine at the NOC.
	Gen *randproj.Generator
	// FDEll is the Frequent Directions basis budget ℓ (FD only); 0 selects
	// sketch.DefaultEll of the assigned flow count.
	FDEll int
	// Workers bounds the goroutines used to shard the sketcher's hot paths;
	// 0 (or negative) selects runtime.GOMAXPROCS(0). Results are identical
	// for any value.
	Workers int
}

// Monitor wraps the configured sketch.Sketcher behind the stable local-
// monitor surface. It is not safe for concurrent use; callers
// (internal/monitor) serialize.
type Monitor struct {
	sk sketch.Sketcher
}

// NewMonitor validates cfg and builds the configured sketcher.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	sk, err := sketch.New(sketch.Config{
		Family:    cfg.Family,
		FlowIDs:   cfg.FlowIDs,
		WindowLen: cfg.WindowLen,
		Epsilon:   cfg.Epsilon,
		Gen:       cfg.Gen,
		Ell:       cfg.FDEll,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Monitor{sk: sk}, nil
}

// Family returns the sketcher family this monitor runs.
func (m *Monitor) Family() sketch.Family { return m.sk.Family() }

// Sketcher exposes the underlying sketcher (internal/noc's warmup shadow
// path and the FD absorb-based aggregation use this).
func (m *Monitor) Sketcher() sketch.Sketcher { return m.sk }

// FlowIDs returns a copy of the assigned global flow indices.
func (m *Monitor) FlowIDs() []int { return m.sk.FlowIDs() }

// NumFlows returns w, the number of flows this monitor handles.
func (m *Monitor) NumFlows() int { return m.sk.NumFlows() }

// Now returns the interval of the most recent update.
func (m *Monitor) Now() int64 { return m.sk.Now() }

// Histogram returns the variance histogram of the i-th assigned flow
// (FlowIDs()[i]) when the monitor runs the randproj family, nil otherwise
// (the FD family has no per-flow histograms). The histogram is live state
// owned by the monitor; callers must only read it (Aggregate, Sketch, …)
// between updates — internal/oracle uses this for differential self-checks.
func (m *Monitor) Histogram(i int) *vh.Histogram {
	rp, ok := m.sk.(*sketch.RandProj)
	if !ok {
		return nil
	}
	return rp.Histogram(i)
}

// NumBucketsTotal returns the sketcher's retained-state cell count: total
// variance-histogram buckets (randproj, the O(w·log² n) bound the paper
// gives) or live buffer rows (FD). Cheap enough to poll every interval for
// a state-size gauge.
func (m *Monitor) NumBucketsTotal() int { return m.sk.StateSize() }

// Update ingests the volumes of interval t; volumes[i] belongs to
// FlowIDs()[i]. Intervals must be strictly increasing.
//
// The per-flow work is sharded across the monitor's workers with state
// identical for any worker count. On error the lowest-indexed failing flow
// is reported and flows in other shards may already have absorbed the
// interval; callers treat an Update error as fatal for the monitor (all
// current ones do).
func (m *Monitor) Update(t int64, volumes []float64) error {
	return m.sk.Update(t, volumes)
}

// SketchReport carries a monitor's current sketch state to the NOC. It is
// the wire-form sketch.Snapshot: the alias keeps transport payloads and gob
// streams identical across the refactor (gob matches fields by name).
type SketchReport = sketch.Snapshot

// Report extracts the current sketch state for all assigned flows.
func (m *Monitor) Report() SketchReport { return m.sk.Snapshot() }
