// Package core implements the paper's primary contribution: the sketch-based
// streaming PCA algorithm for network-wide traffic anomaly detection.
//
// A Monitor is the local-monitor half (Fig. 2 left; §IV-A/B): per assigned
// flow it feeds interval volumes into a variance histogram carrying
// random-projection partial sums, achieving O(w·log n) update time and
// O(w·log² n) space for w flows.
//
// A Detector is the NOC half (Fig. 2 right; §IV-C/D/E): it assembles the
// per-flow sketches into the l×m matrix Ẑ, runs PCA on Ẑ (O(m²·l) =
// O(m²·log n) per rebuild instead of O(m²·n)), thresholds the anomaly
// distance with the Q-statistic, and drives the lazy model-refresh protocol:
// sketches are pulled from monitors only when the current measurement
// exceeds the (possibly stale) threshold.
package core

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/par"
	"streampca/internal/randproj"
	"streampca/internal/vh"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid configuration.
	ErrConfig = errors.New("core: invalid configuration")
	// ErrInput indicates structurally invalid runtime input.
	ErrInput = errors.New("core: invalid input")
	// ErrNoModel indicates a detector query before any model was built.
	ErrNoModel = errors.New("core: no model built yet")
)

// MonitorConfig parameterizes a local monitor.
type MonitorConfig struct {
	// FlowIDs lists the global flow indices this monitor is responsible
	// for. Required, non-empty, unique.
	FlowIDs []int
	// WindowLen is n, the sliding-window length in intervals.
	WindowLen int
	// Epsilon is the VH approximation parameter ε ∈ (0, 1).
	Epsilon float64
	// Gen is the shared random-number generator; required so sketches from
	// different monitors combine at the NOC.
	Gen *randproj.Generator
	// Workers bounds the goroutines used to shard per-flow histogram
	// updates across the assigned flows; 0 (or negative) selects
	// runtime.GOMAXPROCS(0). Results are identical for any value.
	Workers int
}

// Monitor maintains one variance histogram per assigned flow.
// It is not safe for concurrent use; callers (internal/monitor) serialize.
// Internally Update shards the per-flow histogram work across Workers
// goroutines — each flow's histogram is touched by exactly one shard, so the
// resulting state is identical for any worker count.
type Monitor struct {
	flowIDs []int
	hists   []*vh.Histogram
	gen     *randproj.Generator
	workers int
	// rowScratch holds the interval's shared projection row r_{t,·}; reused
	// across updates to keep the per-interval path allocation-free.
	rowScratch []float64
	now        int64
}

// NewMonitor validates cfg and builds the per-flow histograms.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if len(cfg.FlowIDs) == 0 {
		return nil, fmt.Errorf("%w: no flows assigned", ErrConfig)
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("%w: nil random generator", ErrConfig)
	}
	seen := make(map[int]struct{}, len(cfg.FlowIDs))
	for _, id := range cfg.FlowIDs {
		if id < 0 {
			return nil, fmt.Errorf("%w: negative flow id %d", ErrConfig, id)
		}
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("%w: duplicate flow id %d", ErrConfig, id)
		}
		seen[id] = struct{}{}
	}
	hists := make([]*vh.Histogram, len(cfg.FlowIDs))
	for i := range cfg.FlowIDs {
		h, err := vh.New(vh.Config{WindowLen: cfg.WindowLen, Epsilon: cfg.Epsilon, Gen: cfg.Gen})
		if err != nil {
			return nil, fmt.Errorf("histogram for flow %d: %w", cfg.FlowIDs[i], err)
		}
		hists[i] = h
	}
	return &Monitor{
		flowIDs:    append([]int(nil), cfg.FlowIDs...),
		hists:      hists,
		gen:        cfg.Gen,
		workers:    par.Workers(cfg.Workers),
		rowScratch: make([]float64, cfg.Gen.SketchLen()),
	}, nil
}

// FlowIDs returns a copy of the assigned global flow indices.
func (m *Monitor) FlowIDs() []int {
	return append([]int(nil), m.flowIDs...)
}

// NumFlows returns w, the number of flows this monitor handles.
func (m *Monitor) NumFlows() int { return len(m.flowIDs) }

// Now returns the interval of the most recent update.
func (m *Monitor) Now() int64 { return m.now }

// Histogram returns the variance histogram of the i-th assigned flow
// (FlowIDs()[i]). The histogram is live state owned by the monitor; callers
// must only read it (Aggregate, Sketch, …) between updates — internal/oracle
// uses this for differential self-checks.
func (m *Monitor) Histogram(i int) *vh.Histogram {
	if i < 0 || i >= len(m.hists) {
		return nil
	}
	return m.hists[i]
}

// NumBucketsTotal sums the variance-histogram bucket counts across all
// assigned flows — the O(w·log² n) sketch-state size the paper bounds,
// cheap enough to poll every interval for a state-size gauge.
func (m *Monitor) NumBucketsTotal() int {
	total := 0
	for _, h := range m.hists {
		total += h.NumBuckets()
	}
	return total
}

// updateGrain is the minimum flows per shard in Update; below it the
// per-flow histogram work cannot amortize fork/join.
const updateGrain = 32

// Update ingests the volumes of interval t; volumes[i] belongs to
// FlowIDs()[i]. Intervals must be strictly increasing.
//
// The per-flow histogram updates are sharded across the monitor's workers.
// Each histogram belongs to exactly one shard and the shared row is
// read-only, so the resulting state is identical for any worker count. On
// error the lowest-indexed failing flow is reported and flows in other
// shards may already have absorbed the interval; callers treat an Update
// error as fatal for the monitor (all current ones do).
func (m *Monitor) Update(t int64, volumes []float64) error {
	if len(volumes) != len(m.flowIDs) {
		return fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(volumes), len(m.flowIDs))
	}
	// The random row r_{t,·} is shared by every flow at interval t; compute
	// it once into the reusable scratch buffer.
	m.gen.RowInto(t, m.rowScratch)
	row := m.rowScratch
	err := par.ForErr(m.workers, len(volumes), updateGrain, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := m.hists[i].UpdateWithRow(t, volumes[i], row); err != nil {
				return fmt.Errorf("flow %d: %w", m.flowIDs[i], err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	m.now = t
	return nil
}

// SketchReport carries a monitor's current sketch state to the NOC.
type SketchReport struct {
	// Interval is the time of the most recent update covered.
	Interval int64
	// FlowIDs[i] is the global flow index of column i.
	FlowIDs []int
	// Sketches[i] is the l-vector ẑ for flow FlowIDs[i].
	Sketches [][]float64
	// Means[i] is μ_all for flow FlowIDs[i].
	Means []float64
	// Counts[i] is the number of summarized intervals for the flow.
	Counts []int64
	// Buckets[i] is the current bucket count (space diagnostics).
	Buckets []int
}

// Report extracts the current sketches for all assigned flows.
func (m *Monitor) Report() SketchReport {
	rep := SketchReport{
		Interval: m.now,
		FlowIDs:  append([]int(nil), m.flowIDs...),
		Sketches: make([][]float64, len(m.flowIDs)),
		Means:    make([]float64, len(m.flowIDs)),
		Counts:   make([]int64, len(m.flowIDs)),
		Buckets:  make([]int, len(m.flowIDs)),
	}
	for i, h := range m.hists {
		rep.Sketches[i] = h.Sketch()
		rep.Means[i] = h.EstimateMean()
		rep.Counts[i] = h.Count()
		rep.Buckets[i] = h.NumBuckets()
	}
	return rep
}

// Validate checks a report for structural consistency.
func (r *SketchReport) Validate(sketchLen int) error {
	n := len(r.FlowIDs)
	if len(r.Sketches) != n || len(r.Means) != n {
		return fmt.Errorf("%w: report arrays disagree (%d flows, %d sketches, %d means)",
			ErrInput, n, len(r.Sketches), len(r.Means))
	}
	for i, s := range r.Sketches {
		if len(s) != sketchLen {
			return fmt.Errorf("%w: sketch %d has length %d, want %d", ErrInput, i, len(s), sketchLen)
		}
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite sketch value for flow %d", ErrInput, r.FlowIDs[i])
			}
		}
	}
	for i, v := range r.Means {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite mean for flow %d", ErrInput, r.FlowIDs[i])
		}
	}
	return nil
}
