package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// SaveModel serializes the current model with gob so a NOC can checkpoint
// across restarts (the sketches live at the monitors; only the fitted model
// and threshold need persisting). Fails with ErrNoModel before the first
// rebuild.
func (d *Detector) SaveModel(w io.Writer) error {
	if d.model == nil {
		return ErrNoModel
	}
	if err := gob.NewEncoder(w).Encode(d.model); err != nil {
		return fmt.Errorf("encode model: %w", err)
	}
	return nil
}

// LoadModel restores a model saved by SaveModel, validating it against the
// detector's configuration before adopting it.
func (d *Detector) LoadModel(r io.Reader) error {
	var m Model
	if err := gob.NewDecoder(r).Decode(&m); err != nil {
		return fmt.Errorf("decode model: %w", err)
	}
	if err := d.validateModel(&m); err != nil {
		return err
	}
	d.model = &m
	return nil
}

// validateModel checks structural and numerical sanity of a restored model.
func (d *Detector) validateModel(m *Model) error {
	n := d.cfg.NumFlows
	if m.Components == nil || m.Components.Rows() != n || m.Components.Cols() != n {
		return fmt.Errorf("%w: components for %d flows", ErrInput, n)
	}
	if len(m.Singular) != n || len(m.Means) != n {
		return fmt.Errorf("%w: %d singular values and %d means for %d flows",
			ErrInput, len(m.Singular), len(m.Means), n)
	}
	if m.Rank < 0 || m.Rank > n {
		return fmt.Errorf("%w: rank %d", ErrInput, m.Rank)
	}
	if math.IsNaN(m.Threshold) || math.IsInf(m.Threshold, 0) || m.Threshold < 0 {
		return fmt.Errorf("%w: threshold %v", ErrInput, m.Threshold)
	}
	if !m.Components.IsFinite() {
		return fmt.Errorf("%w: non-finite components", ErrInput)
	}
	prev := math.Inf(1)
	for j, s := range m.Singular {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > prev+1e-9 {
			return fmt.Errorf("%w: singular value %d = %v", ErrInput, j, s)
		}
		prev = s
	}
	for j, v := range m.Means {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: mean %d = %v", ErrInput, j, v)
		}
	}
	return nil
}
