package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"streampca/internal/mat"
	"streampca/internal/par"
	"streampca/internal/sketch"
	"streampca/internal/stats"
)

// ErrThresholdUnavailable reports that the current model has no usable δ
// threshold because its residual spectrum was degenerate (see
// stats.ErrDegenerate and Model.ThresholdUnavailable).
var ErrThresholdUnavailable = errors.New("core: threshold unavailable (degenerate residual spectrum)")

// RankMode selects how the NOC chooses the normal-subspace size r.
type RankMode int

const (
	// RankFixed uses the configured FixedRank (the paper's evaluation
	// sweeps r = 1…10 this way).
	RankFixed RankMode = iota + 1
	// RankThreeSigma applies the 3σ-heuristic of §IV-D to the sketch
	// matrix's projections.
	RankThreeSigma
	// RankEnergy picks the smallest r retaining EnergyFrac of Σλ̂².
	RankEnergy
)

// String implements fmt.Stringer.
func (m RankMode) String() string {
	switch m {
	case RankFixed:
		return "fixed"
	case RankThreeSigma:
		return "3sigma"
	case RankEnergy:
		return "energy"
	default:
		return "unknown"
	}
}

// ModelBuilder selects how the NOC turns the assembled sketch matrix into a
// PCA model (randproj family only; the FD family always builds per block on
// the small side).
type ModelBuilder int

const (
	// BuildJacobi eigendecomposes the m×m Gram matrix ẐᵀẐ — the exact
	// O(m²·l + m³)-per-rebuild path the paper costs out. The zero value, so
	// configurations written before the field existed keep their meaning.
	BuildJacobi ModelBuilder = iota
	// BuildRSVD runs the randomized range-finder SVD on Ẑ directly:
	// O(l·m·p) for p = rank+oversample sampled directions, never forming
	// the Gram matrix. The spectrum is truncated to p values; see
	// Model.ThresholdUnavailable for the rank ≥ p degenerate case.
	BuildRSVD
)

// String implements fmt.Stringer.
func (b ModelBuilder) String() string {
	switch b {
	case BuildJacobi:
		return "jacobi"
	case BuildRSVD:
		return "rsvd"
	default:
		return fmt.Sprintf("builder(%d)", int(b))
	}
}

// ParseModelBuilder maps the -modelbuilder flag spelling to a ModelBuilder.
func ParseModelBuilder(s string) (ModelBuilder, error) {
	switch s {
	case "", "jacobi":
		return BuildJacobi, nil
	case "rsvd":
		return BuildRSVD, nil
	default:
		return 0, fmt.Errorf("%w: unknown model builder %q (want jacobi or rsvd)", ErrConfig, s)
	}
}

// DetectorConfig parameterizes the NOC-side detector.
type DetectorConfig struct {
	// NumFlows is m, the network-wide number of aggregated flows.
	NumFlows int
	// WindowLen is n, used in the threshold's variance normalization.
	WindowLen int
	// SketchLen is the family's sketch parameter; every monitor must use
	// the same value. For the randproj family it is l, the sketch length;
	// for the FD family it is ℓ, the basis budget (the same single value
	// transport.Hello carries).
	SketchLen int
	// Alpha is the false-alarm rate for the δ threshold.
	Alpha float64
	// Mode selects rank determination; defaults to RankFixed.
	Mode RankMode
	// FixedRank is r for RankFixed.
	FixedRank int
	// EnergyFrac is the retained-energy fraction for RankEnergy
	// (defaults to 0.9, the paper's "90% energy" observation).
	EnergyFrac float64
	// Workers bounds the goroutines used by the model rebuild's matrix
	// kernels (Gram product and eigendecomposition); 0 (or negative)
	// selects runtime.GOMAXPROCS(0). Results are identical for any value.
	Workers int
	// Family is the sketcher family the monitors run; the zero value is
	// the paper's random projection. For sketch.FamilyFD, Rebuild consumes
	// Fetch.Blocks and builds the model per monitor block on the small
	// side; RankThreeSigma is unsupported (it needs the global sketch
	// matrix, which FD never materializes).
	Family sketch.Family
	// Builder selects the randproj model build (Jacobi Gram eigensolve, the
	// default, or the randomized range-finder SVD). Ignored for FD.
	Builder ModelBuilder
	// RSVDOversample pads the sampled subspace beyond the target rank
	// (default 10, the standard recommendation).
	RSVDOversample int
	// RSVDPowerIters is the number of power passes sharpening the sampled
	// range (default 1; each costs one extra sweep over Ẑ).
	RSVDPowerIters int
	// RSVDSeed seeds the deterministic gaussian test matrix.
	RSVDSeed uint64
}

// Model is a fitted sketch-PCA model at the NOC.
type Model struct {
	// Components' column j is â_j (m×m orthonormal).
	Components *mat.Matrix
	// Singular holds λ̂_j descending.
	Singular []float64
	// Means holds μ_all per flow, used to center measurements.
	Means []float64
	// Rank is the chosen normal-subspace size r.
	Rank int
	// Threshold is the δ_α control limit on the distance scale.
	Threshold float64
	// BuiltAt is the sketch interval the model was built from.
	BuiltAt int64
	// Degraded marks a model rebuilt from a degraded fetch: StaleFlows of
	// its sketches were cached reports standing in for unreachable
	// monitors, so the ε error bound of Theorem 2 holds only w.r.t. the
	// stale window those sketches cover.
	Degraded   bool
	StaleFlows int
	// ThresholdUnavailable marks a model whose residual spectrum was
	// degenerate for the Jackson–Mudholkar expansion (stats.ErrDegenerate):
	// Threshold is stored as 0 and must not be compared against. Observe
	// reports the condition on its Decision instead of alarming. The field's
	// zero value means "available", so models checkpointed before the field
	// existed restore correctly.
	ThresholdUnavailable bool
	// ThresholdCapped is the number of trailing residual components
	// stats.QStatisticCapped dropped to recover a usable control limit from
	// an otherwise degenerate spectrum (h0 ≤ 0). Zero means the exact
	// uncapped Jackson–Mudholkar threshold was used.
	ThresholdCapped int
}

// Detector is the NOC-side streaming detector. It is not safe for concurrent
// use; internal/noc serializes access.
type Detector struct {
	cfg   DetectorConfig
	model *Model
	// counters for the lazy protocol.
	observations int64
	fetches      int64
	alarms       int64
}

// NewDetector validates cfg.
func NewDetector(cfg DetectorConfig) (*Detector, error) {
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, cfg.NumFlows)
	}
	if cfg.WindowLen < 2 {
		return nil, fmt.Errorf("%w: window length %d", ErrConfig, cfg.WindowLen)
	}
	if cfg.SketchLen < 1 {
		return nil, fmt.Errorf("%w: sketch length %d", ErrConfig, cfg.SketchLen)
	}
	if math.IsNaN(cfg.Alpha) || cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return nil, fmt.Errorf("%w: alpha %v", ErrConfig, cfg.Alpha)
	}
	if cfg.Mode == 0 {
		cfg.Mode = RankFixed
	}
	switch cfg.Mode {
	case RankFixed:
		if cfg.FixedRank < 0 || cfg.FixedRank > cfg.NumFlows {
			return nil, fmt.Errorf("%w: fixed rank %d with %d flows", ErrConfig, cfg.FixedRank, cfg.NumFlows)
		}
	case RankThreeSigma:
		// No parameters.
	case RankEnergy:
		if cfg.EnergyFrac == 0 {
			cfg.EnergyFrac = 0.9
		}
		if cfg.EnergyFrac <= 0 || cfg.EnergyFrac > 1 {
			return nil, fmt.Errorf("%w: energy fraction %v", ErrConfig, cfg.EnergyFrac)
		}
	default:
		return nil, fmt.Errorf("%w: unknown rank mode %d", ErrConfig, int(cfg.Mode))
	}
	switch cfg.Family {
	case sketch.FamilyRandProj:
	case sketch.FamilyFD:
		if cfg.Mode == RankThreeSigma {
			return nil, fmt.Errorf("%w: rank mode 3sigma needs the global sketch matrix, which the fd family never materializes", ErrConfig)
		}
		if cfg.Builder != BuildJacobi {
			return nil, fmt.Errorf("%w: the fd family has its own per-block eigensolve; a model builder only applies to randproj", ErrConfig)
		}
	default:
		return nil, fmt.Errorf("%w: unknown sketch family %d", ErrConfig, int(cfg.Family))
	}
	switch cfg.Builder {
	case BuildJacobi:
	case BuildRSVD:
		if cfg.RSVDOversample == 0 {
			cfg.RSVDOversample = 10
		}
		if cfg.RSVDOversample < 0 {
			return nil, fmt.Errorf("%w: rsvd oversample %d", ErrConfig, cfg.RSVDOversample)
		}
		switch {
		case cfg.RSVDPowerIters == 0:
			cfg.RSVDPowerIters = 1
		case cfg.RSVDPowerIters < 0:
			// Explicit "no power passes".
			cfg.RSVDPowerIters = 0
		}
	default:
		return nil, fmt.Errorf("%w: unknown model builder %d", ErrConfig, int(cfg.Builder))
	}
	cfg.Workers = par.Workers(cfg.Workers)
	return &Detector{cfg: cfg}, nil
}

// Config returns the detector configuration.
func (d *Detector) Config() DetectorConfig { return d.cfg }

// HasModel reports whether a model has been built.
func (d *Detector) HasModel() bool { return d.model != nil }

// Model returns the current model, or nil before the first rebuild.
func (d *Detector) Model() *Model { return d.model }

// AssembleSketchMatrix organizes per-flow sketches into the l×m matrix Ẑ.
// sketches[j] is the l-vector for global flow j; all must be present.
func AssembleSketchMatrix(sketches [][]float64, sketchLen int) (*mat.Matrix, error) {
	m := len(sketches)
	if m == 0 {
		return nil, fmt.Errorf("%w: no sketches", ErrInput)
	}
	z := mat.NewMatrix(sketchLen, m)
	for j, s := range sketches {
		if s == nil {
			return nil, fmt.Errorf("%w: missing sketch for flow %d", ErrInput, j)
		}
		if len(s) != sketchLen {
			return nil, fmt.Errorf("%w: sketch %d has length %d, want %d", ErrInput, j, len(s), sketchLen)
		}
		for k, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: non-finite sketch value for flow %d", ErrInput, j)
			}
			z.Set(k, j, v)
		}
	}
	return z, nil
}

// RebuildModel runs PCA on the sketch matrix and refreshes the threshold.
// sketches[j] and means[j] are indexed by global flow id; builtAt records the
// sketch freshness.
func (d *Detector) RebuildModel(sketches [][]float64, means []float64, builtAt int64) error {
	if len(sketches) != d.cfg.NumFlows || len(means) != d.cfg.NumFlows {
		return fmt.Errorf("%w: %d sketches and %d means for %d flows",
			ErrInput, len(sketches), len(means), d.cfg.NumFlows)
	}
	for j, v := range means {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: non-finite mean for flow %d", ErrInput, j)
		}
	}
	z, err := AssembleSketchMatrix(sketches, d.cfg.SketchLen)
	if err != nil {
		return err
	}
	var (
		components *mat.Matrix
		sv         []float64
		realLen    int
	)
	switch d.cfg.Builder {
	case BuildJacobi:
		// PCA on Ẑ via the m×m Gram matrix: eigenvalues are λ̂²,
		// eigenvectors are the right singular vectors â — the only pieces
		// the detector needs. Both kernels shard across the configured
		// workers with bit-identical results for any worker count.
		eig, err := mat.SymEigenWorkers(z.GramWorkers(d.cfg.Workers), d.cfg.Workers)
		if err != nil {
			return fmt.Errorf("sketch eigendecomposition: %w", err)
		}
		components = eig.Vectors
		sv = make([]float64, d.cfg.NumFlows)
		for j, lam := range eig.Values {
			if lam < 0 {
				lam = 0
			}
			sv[j] = math.Sqrt(lam)
		}
		realLen = len(sv)
	case BuildRSVD:
		// Randomized range finder on Ẑ itself: never forms the m×m Gram.
		// The sampled subspace targets FixedRank directions (the only mode
		// with a rank known before the decomposition); other modes fall
		// back to sampling the full min(l, m) spectrum.
		target := minInt(d.cfg.SketchLen, d.cfg.NumFlows)
		if d.cfg.Mode == RankFixed {
			target = d.cfg.FixedRank
			if target < 1 {
				target = 1
			}
		}
		svd, err := mat.RandomizedSVD(z, target, d.cfg.RSVDOversample,
			d.cfg.RSVDPowerIters, d.cfg.RSVDSeed, d.cfg.Workers)
		if err != nil {
			return fmt.Errorf("sketch randomized svd: %w", err)
		}
		realLen = len(svd.Values)
		components = mat.NewMatrix(d.cfg.NumFlows, d.cfg.NumFlows)
		for j := 0; j < realLen; j++ {
			for i := 0; i < d.cfg.NumFlows; i++ {
				components.Set(i, j, svd.V.At(i, j))
			}
		}
		sv = make([]float64, d.cfg.NumFlows)
		copy(sv, svd.Values)
	default:
		return fmt.Errorf("%w: unknown model builder %d", ErrConfig, int(d.cfg.Builder))
	}
	return d.finishModel(z, components, sv, realLen, means, builtAt)
}

// finishModel runs the family-independent tail of every rebuild: rank
// selection, the Q-statistic threshold over the real (non-padded) part of
// the spectrum, and model installation. z is the sketch matrix when one
// exists (nil for FD; only RankThreeSigma reads it, and NewDetector rejects
// that combination).
func (d *Detector) finishModel(z *mat.Matrix, components *mat.Matrix, sv []float64, realLen int, means []float64, builtAt int64) error {
	rank, err := d.chooseRank(z, components, sv[:realLen])
	if err != nil {
		return fmt.Errorf("rank selection: %w", err)
	}
	threshold, unavailable, capped := 0.0, false, 0
	if rank >= realLen && realLen < d.cfg.NumFlows {
		// Truncated spectrum (rSVD sampling or FD's ≤ Σ2ℓ bases) with the
		// whole of it assigned to the normal subspace: the residual energy
		// lives entirely beyond what the decomposition kept, so no control
		// limit can be formed. QStatistic would report an empty residual
		// (threshold 0) — correct for a genuinely full-rank model, an
		// alarm-on-everything trap here. Same typed degradation as the
		// PR-4 Jacobi fix: keep the subspace, flag the threshold.
		unavailable = true
	} else {
		// Residual-rank capping (stats.QStatisticCapped): an h0 ≤ 0 spectrum
		// gets its near-zero trailing residual eigenvalues treated as exact
		// zeros and the limit recomputed on what remains, instead of
		// declaring the whole model threshold-less. Only when no cap admits
		// a limit does the typed degradation below fire.
		threshold, capped, err = stats.QStatisticCapped(sv[:realLen], d.cfg.WindowLen, rank, d.cfg.Alpha)
		if err != nil {
			if !errors.Is(err, stats.ErrDegenerate) {
				return fmt.Errorf("threshold: %w", err)
			}
			// A degenerate residual spectrum with no usable cap has no
			// trustworthy control limit at all. Keep the freshly fitted
			// subspace (distances are still meaningful diagnostics) but mark
			// the threshold unusable rather than storing a NaN/garbage value
			// that comparisons would silently never exceed.
			threshold, unavailable, capped = 0, true, 0
		}
	}
	d.model = &Model{
		Components:           components,
		Singular:             sv,
		Means:                append([]float64(nil), means...),
		Rank:                 rank,
		Threshold:            threshold,
		BuiltAt:              builtAt,
		ThresholdUnavailable: unavailable,
		ThresholdCapped:      capped,
	}
	return nil
}

// RebuildFD builds the model from per-monitor Frequent Directions blocks.
// Each block carries ≤ 2ℓ basis rows over its own flow columns, so the
// per-block decomposition runs on the small side: B·Bᵀ is at most 2ℓ×2ℓ and
// the right singular vectors are recovered as Bᵀu/σ — O(w·ℓ²) per block and
// never an m×m eigensolve. The union of all blocks' singular pairs, sorted
// descending, is the model spectrum: cross-monitor covariance is not
// represented (the FD trade-off DESIGN.md §15 documents), so each component
// is supported on a single monitor's flow columns.
func (d *Detector) RebuildFD(blocks []sketch.Snapshot, builtAt int64) error {
	m := d.cfg.NumFlows
	if len(blocks) == 0 {
		return fmt.Errorf("%w: no fd blocks", ErrInput)
	}
	type pair struct {
		s   float64
		vec []float64
	}
	var pairs []pair
	means := make([]float64, m)
	covered := make([]bool, m)
	for bi := range blocks {
		b := &blocks[bi]
		if b.Family != sketch.FamilyFD {
			return fmt.Errorf("%w: block %d is %v, want fd", ErrInput, bi, b.Family)
		}
		if err := b.Validate(d.cfg.SketchLen); err != nil {
			return fmt.Errorf("fd block %d: %w", bi, err)
		}
		w := len(b.FlowIDs)
		for i, id := range b.FlowIDs {
			if id < 0 || id >= m {
				return fmt.Errorf("%w: fd block %d reports flow %d of %d", ErrInput, bi, id, m)
			}
			if covered[id] {
				return fmt.Errorf("%w: flow %d reported by two fd blocks", ErrInput, id)
			}
			covered[id] = true
			means[id] = b.Means[i]
		}
		if len(b.FDRows) == 0 {
			continue
		}
		rows := mat.NewMatrix(len(b.FDRows), w)
		for i, r := range b.FDRows {
			copy(rows.RowView(i), r)
		}
		// B·Bᵀ = (Bᵀ)ᵀ(Bᵀ): small-side Gram through the blocked-tile kernel.
		eig, err := mat.SymEigenWorkers(rows.T().GramWorkers(d.cfg.Workers), d.cfg.Workers)
		if err != nil {
			return fmt.Errorf("fd block %d eigendecomposition: %w", bi, err)
		}
		for k, lam := range eig.Values {
			if lam <= 0 {
				break // descending: the rest are zero/noise directions
			}
			s := math.Sqrt(lam)
			u := make([]float64, len(b.FDRows))
			for i := range u {
				u[i] = eig.Vectors.At(i, k)
			}
			local, err := rows.TMulVec(u) // Bᵀu = σ·v
			if err != nil {
				return fmt.Errorf("fd block %d component %d: %w", bi, k, err)
			}
			vec := make([]float64, m)
			for i, id := range b.FlowIDs {
				vec[id] = local[i] / s
			}
			pairs = append(pairs, pair{s: s, vec: vec})
		}
	}
	for id, ok := range covered {
		if !ok {
			return fmt.Errorf("%w: no fd block reported flow %d", ErrInput, id)
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })
	realLen := len(pairs)
	if realLen > m {
		realLen = m
	}
	components := mat.NewMatrix(m, m)
	sv := make([]float64, m)
	for j := 0; j < realLen; j++ {
		sv[j] = pairs[j].s
		for i := 0; i < m; i++ {
			components.Set(i, j, pairs[j].vec[i])
		}
	}
	return d.finishModel(nil, components, sv, realLen, means, builtAt)
}

// Rebuild dispatches a fetched sketch pull to the family's model build.
func (d *Detector) Rebuild(f Fetch) error {
	if d.cfg.Family == sketch.FamilyFD {
		return d.RebuildFD(f.Blocks, f.Interval)
	}
	return d.RebuildModel(f.Sketches, f.Means, f.Interval)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// chooseRank applies the configured rank policy to a freshly decomposed
// sketch matrix.
func (d *Detector) chooseRank(z *mat.Matrix, components *mat.Matrix, sv []float64) (int, error) {
	switch d.cfg.Mode {
	case RankFixed:
		return d.cfg.FixedRank, nil
	case RankEnergy:
		var total float64
		for _, s := range sv {
			total += s * s
		}
		if total == 0 {
			return 0, nil
		}
		var acc float64
		for j, s := range sv {
			acc += s * s
			if acc >= d.cfg.EnergyFrac*total {
				return j + 1, nil
			}
		}
		return len(sv), nil
	case RankThreeSigma:
		// Examine Ẑ·â_j one component at a time; the first projection with
		// an element beyond 3σ_j starts the anomalous subspace (§IV-D).
		// col and proj are reused across components: the old per-component
		// Col+MulVec pair allocated two vectors per j, which dominated the
		// rebuild profile at large m.
		l := z.Rows()
		col := make([]float64, components.Rows())
		proj := make([]float64, l)
		for j := 0; j < len(sv); j++ {
			if sv[j] == 0 {
				return j, nil
			}
			sigma := sv[j] / math.Sqrt(float64(l))
			if err := components.ColInto(j, col); err != nil {
				return 0, err
			}
			if err := z.MulVecTo(proj, col); err != nil {
				return 0, err
			}
			for _, v := range proj {
				if math.Abs(v) > 3*sigma {
					return j, nil
				}
			}
		}
		return len(sv), nil
	default:
		return 0, fmt.Errorf("%w: unknown rank mode %d", ErrConfig, int(d.cfg.Mode))
	}
}

// Distance computes the anomaly distance d_Ẑ(y) of a raw measurement vector
// (eq. 19/21) against the current model.
func (d *Detector) Distance(x []float64) (float64, error) {
	if d.model == nil {
		return 0, ErrNoModel
	}
	m := d.cfg.NumFlows
	if len(x) != m {
		return 0, fmt.Errorf("%w: vector of %d for %d flows", ErrInput, len(x), m)
	}
	y := make([]float64, m)
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("%w: non-finite measurement for flow %d", ErrInput, j)
		}
		y[j] = v - d.model.Means[j]
	}
	total := mat.Dot(y, y)
	var normal float64
	for j := 0; j < d.model.Rank; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += d.model.Components.At(i, j) * y[i]
		}
		normal += s * s
	}
	rem := total - normal
	if rem < 0 {
		rem = 0
	}
	return math.Sqrt(rem), nil
}

// Threshold returns the current δ. It fails with ErrNoModel before the first
// model and with ErrThresholdUnavailable when the current model's residual
// spectrum was degenerate.
func (d *Detector) Threshold() (float64, error) {
	if d.model == nil {
		return 0, ErrNoModel
	}
	if d.model.ThresholdUnavailable {
		return 0, ErrThresholdUnavailable
	}
	return d.model.Threshold, nil
}

// Fetch is the result of one sketch pull: sketches and means indexed by
// global flow id plus the interval they cover. A fault-tolerant fetcher may
// return Degraded results where StaleFlows of the entries are cached
// reports standing in for monitors that did not answer in time.
type Fetch struct {
	Sketches [][]float64
	Means    []float64
	Interval int64
	// Blocks carries the per-monitor snapshots for the FD family, which has
	// no per-flow sketch vectors to fold into Sketches; RebuildFD consumes
	// them directly. Empty for the randproj family.
	Blocks []sketch.Snapshot
	// Degraded marks a fetch completed from partially stale inputs.
	Degraded bool
	// StaleFlows counts the flows served from cache rather than a live
	// monitor response.
	StaleFlows int
}

// FetchFunc pulls fresh sketches from the local monitors.
type FetchFunc func() (Fetch, error)

// Decision reports the outcome of one lazy-protocol observation (§IV-C).
type Decision struct {
	// Distance is the anomaly distance against the final model used.
	Distance float64
	// Threshold is the δ in force for the final comparison.
	Threshold float64
	// Anomalous is true when the measurement still exceeds δ after a
	// refresh — the paper's alarm condition.
	Anomalous bool
	// Refreshed is true when the observation triggered a sketch pull and
	// model rebuild.
	Refreshed bool
	// StaleDistance is the distance against the stale model when a refresh
	// occurred (diagnostics); equal to Distance otherwise.
	StaleDistance float64
	// Degraded is true when the model in force was built from a degraded
	// fetch (see Fetch.Degraded); it stays set on subsequent observations
	// until a full-coverage rebuild replaces the model.
	Degraded bool
	// StaleFlows is the in-force model's count of cache-substituted flows.
	StaleFlows int
	// ThresholdUnavailable is true when the final model's residual spectrum
	// was degenerate: Threshold is 0, no comparison was made, and Anomalous
	// is false regardless of Distance. Callers should surface the condition
	// (the detector is effectively blind) rather than read it as "normal".
	ThresholdUnavailable bool
}

// Observe drives the lazy detection protocol for one measurement vector:
//
//  1. no model yet → fetch, rebuild, evaluate;
//  2. d(y) ≤ δ → normal, nothing else happens;
//  3. d(y) > δ → fetch fresh sketches, rebuild model and threshold,
//     re-evaluate: still above → alarm; otherwise the model was stale and
//     has now been refreshed.
func (d *Detector) Observe(x []float64, fetch FetchFunc) (Decision, error) {
	if fetch == nil {
		return Decision{}, fmt.Errorf("%w: nil fetch", ErrInput)
	}
	d.observations++

	refresh := func() error {
		f, err := fetch()
		if err != nil {
			return fmt.Errorf("fetch sketches: %w", err)
		}
		d.fetches++
		if err := d.Rebuild(f); err != nil {
			return fmt.Errorf("rebuild: %w", err)
		}
		d.model.Degraded = f.Degraded
		d.model.StaleFlows = f.StaleFlows
		return nil
	}

	var dec Decision
	if d.model == nil {
		if err := refresh(); err != nil {
			return Decision{}, err
		}
		dec.Refreshed = true
	}

	dist, err := d.Distance(x)
	if err != nil {
		return Decision{}, err
	}
	dec.Distance = dist
	dec.StaleDistance = dist
	dec.Threshold = d.model.Threshold
	dec.Degraded = d.model.Degraded
	dec.StaleFlows = d.model.StaleFlows

	if d.model.ThresholdUnavailable {
		// No usable δ: a stale model may be the cause, so pull fresh
		// sketches once; if the fresh spectrum is degenerate too, report
		// the condition instead of comparing against the 0 placeholder
		// (or, worse, a NaN — which compares false and never alarms).
		if !dec.Refreshed {
			if err := refresh(); err != nil {
				return Decision{}, err
			}
			dec.Refreshed = true
			if dist, err = d.Distance(x); err != nil {
				return Decision{}, err
			}
			dec.Distance = dist
			dec.Threshold = d.model.Threshold
			dec.Degraded = d.model.Degraded
			dec.StaleFlows = d.model.StaleFlows
		}
		if d.model.ThresholdUnavailable {
			dec.ThresholdUnavailable = true
			return dec, nil
		}
	}

	if dist <= d.model.Threshold {
		return dec, nil
	}
	if !dec.Refreshed {
		// The model may be stale: pull fresh sketches and re-evaluate.
		if err := refresh(); err != nil {
			return Decision{}, err
		}
		dec.Refreshed = true
		fresh, err := d.Distance(x)
		if err != nil {
			return Decision{}, err
		}
		dec.Distance = fresh
		dec.Threshold = d.model.Threshold
		dec.Degraded = d.model.Degraded
		dec.StaleFlows = d.model.StaleFlows
		if d.model.ThresholdUnavailable {
			dec.ThresholdUnavailable = true
			return dec, nil
		}
		if fresh <= d.model.Threshold {
			return dec, nil
		}
	}
	dec.Anomalous = true
	d.alarms++
	return dec, nil
}

// Stats reports protocol counters: observations seen, sketch fetches
// performed and alarms raised.
func (d *Detector) Stats() (observations, fetches, alarms int64) {
	return d.observations, d.fetches, d.alarms
}
