package vh

import (
	"math/rand"
	"testing"
)

// TestEstimateVarianceZeroAlloc pins the query path to zero allocations: the
// detector calls EstimateVariance once per flow per interval, and the
// aggregate-moments walk over the bucket list must not heap-allocate.
func TestEstimateVarianceZeroAlloc(t *testing.T) {
	h, err := New(Config{WindowLen: 256, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1024; i++ {
		if err := h.Update(int64(i+1), rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(200, func() { _ = h.EstimateVariance() }); avg != 0 {
		t.Fatalf("EstimateVariance allocates %.2f per call, want 0", avg)
	}
}
