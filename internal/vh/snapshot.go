package vh

import (
	"fmt"
	"math"
)

// Snapshot is a serializable checkpoint of a histogram's state. All fields
// are exported so encoding/gob (or JSON) round-trips it; the configuration
// (window length, ε, generator) is NOT captured — a restored histogram must
// be constructed with the same Config, most importantly the same shared
// random seed, or the sketch sums would be meaningless.
type Snapshot struct {
	// Now is the time of the most recent update.
	Now int64
	// Started mirrors whether any update has been ingested.
	Started bool
	// WindowLen and SketchLen record the configuration the snapshot was
	// taken under, for validation at restore time.
	WindowLen int
	SketchLen int
	// Buckets is the bucket list, oldest first.
	Buckets []Bucket
}

// Snapshot captures the current state for checkpointing. The returned value
// shares no storage with the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Now:       h.now,
		Started:   h.started,
		WindowLen: h.cfg.WindowLen,
		SketchLen: h.sketchL,
		Buckets:   h.Buckets(),
	}
}

// Restore replaces the histogram's state with a snapshot taken from a
// histogram with the same configuration. The incremental totals are
// recomputed, so a corrupted snapshot fails loudly rather than silently
// skewing sketches.
func (h *Histogram) Restore(s Snapshot) error {
	if s.WindowLen != h.cfg.WindowLen {
		return fmt.Errorf("%w: snapshot window %d, histogram %d", ErrConfig, s.WindowLen, h.cfg.WindowLen)
	}
	if s.SketchLen != h.sketchL {
		return fmt.Errorf("%w: snapshot sketch length %d, histogram %d", ErrConfig, s.SketchLen, h.sketchL)
	}
	var prev int64 = math.MinInt64
	var count int64
	var sum float64
	totalZ := make([]float64, h.sketchL)
	totalR := make([]float64, h.sketchL)
	for i := range s.Buckets {
		b := &s.Buckets[i]
		if b.Timestamp <= prev {
			return fmt.Errorf("%w: bucket %d timestamp %d not increasing", ErrConfig, i, b.Timestamp)
		}
		prev = b.Timestamp
		if b.Count < 1 {
			return fmt.Errorf("%w: bucket %d count %d", ErrConfig, i, b.Count)
		}
		if b.Var < 0 || math.IsNaN(b.Var) || math.IsInf(b.Var, 0) ||
			math.IsNaN(b.Mean) || math.IsInf(b.Mean, 0) {
			return fmt.Errorf("%w: bucket %d has invalid statistics", ErrConfig, i)
		}
		if len(b.Z) != h.sketchL || len(b.R) != h.sketchL {
			return fmt.Errorf("%w: bucket %d sketch arrays of %d/%d, want %d",
				ErrConfig, i, len(b.Z), len(b.R), h.sketchL)
		}
		count += b.Count
		sum += float64(b.Count) * b.Mean
		for k := range b.Z {
			if math.IsNaN(b.Z[k]) || math.IsInf(b.Z[k], 0) || math.IsNaN(b.R[k]) || math.IsInf(b.R[k], 0) {
				return fmt.Errorf("%w: bucket %d has non-finite sketch sums", ErrConfig, i)
			}
			totalZ[k] += b.Z[k]
			totalR[k] += b.R[k]
		}
	}
	if s.Started && len(s.Buckets) > 0 && s.Buckets[len(s.Buckets)-1].Timestamp > s.Now {
		return fmt.Errorf("%w: newest bucket is in the future", ErrConfig)
	}

	// Deep-copy the buckets so the snapshot stays independent.
	h.buckets = make([]Bucket, len(s.Buckets))
	for i, b := range s.Buckets {
		h.buckets[i] = Bucket{Timestamp: b.Timestamp, Count: b.Count, Mean: b.Mean, Var: b.Var}
		if h.sketchL > 0 {
			h.buckets[i].Z = append([]float64(nil), b.Z...)
			h.buckets[i].R = append([]float64(nil), b.R...)
		}
	}
	h.now = s.Now
	h.started = s.Started
	h.totalCount = count
	h.totalSum = sum
	h.totalZ = totalZ
	h.totalR = totalR
	return nil
}
