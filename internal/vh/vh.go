// Package vh implements the Variance Histogram of the sketch-based streaming
// PCA algorithm (paper §IV-B): the sliding-window variance summary of
// Zhang & Guan (PODS'07), extended so that every bucket additionally carries
// the random-projection partial sums Z_{pk} = Σ x_i·r_{ik} and
// R_{pk} = Σ r_{ik}.
//
// A histogram ingests one traffic-volume measurement per interval and
// maintains a short list of buckets whose union ε-approximates the exact
// window statistics:
//
//	(1−ε)·V ≤ V̂ ≤ V            (Lemma 1)
//
// while the embedded sketch sums let the NOC reconstruct
// ẑ_k = (1/√l)·(Z_all,k − μ_all·R_all,k), an ε-faithful random projection of
// the centered traffic column (eq. 17; see DESIGN.md §3.2 for the n_all
// typo in the printed formula).
package vh

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/randproj"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid histogram configuration.
	ErrConfig = errors.New("vh: invalid configuration")
	// ErrOutOfOrder indicates an update older than the current time.
	ErrOutOfOrder = errors.New("vh: out-of-order update")
	// ErrNotFinite indicates a NaN/Inf measurement.
	ErrNotFinite = errors.New("vh: non-finite measurement")
)

// Bucket summarizes a contiguous subsequence of measurements
// (paper §IV-B bucket statistics).
type Bucket struct {
	// Timestamp is the arrival time of the bucket's OLDEST element. A new
	// singleton bucket gets the element's time; a merged bucket inherits
	// the older operand's timestamp ("the merged bucket's time stamp is
	// set to be the time stamp of the older one").
	Timestamp int64
	// Count is the number of elements summarized (n_p).
	Count int64
	// Mean is the arithmetic mean of the elements (μ_p).
	Mean float64
	// Var is the sum of squared deviations Σ(x−μ_p)² (V_p, eq. 10 —
	// unnormalized, so merging is exact).
	Var float64
	// Z[k] is Σ x_i·r_{ik} over the bucket's elements (Z_pk). Nil when the
	// histogram runs without sketches.
	Z []float64
	// R[k] is Σ r_{ik} over the bucket's elements (R_pk).
	R []float64
}

// mergeInto folds b (newer) into a (older) per eqs. (11)–(15), keeping a's
// timestamp.
func (a *Bucket) mergeInto(b *Bucket) {
	na, nb := float64(a.Count), float64(b.Count)
	total := na + nb
	if total == 0 {
		return
	}
	diff := a.Mean - b.Mean
	a.Var = a.Var + b.Var + na*nb/total*diff*diff
	a.Mean = (na*a.Mean + nb*b.Mean) / total
	a.Count += b.Count
	for k := range a.Z {
		a.Z[k] += b.Z[k]
		a.R[k] += b.R[k]
	}
}

// mergedStats returns the count and variance of a∪b without materializing
// the merged bucket (used by the merge-rule tests in the update scan).
func mergedStats(a, b *Bucket) (count int64, variance float64) {
	na, nb := float64(a.Count), float64(b.Count)
	total := na + nb
	if total == 0 {
		return 0, 0
	}
	diff := a.Mean - b.Mean
	return a.Count + b.Count, a.Var + b.Var + na*nb/total*diff*diff
}

// Config parameterizes a Histogram.
type Config struct {
	// WindowLen is n, the sliding-window length in intervals. Must be ≥ 1.
	WindowLen int
	// Epsilon is the ε approximation parameter in (0, 1).
	Epsilon float64
	// Gen supplies the shared random numbers r_{tk}. May be nil, in which
	// case the histogram maintains only the variance summary (no sketch).
	Gen *randproj.Generator
}

// Histogram is the per-flow variance histogram. It is not safe for
// concurrent use; the owning monitor serializes updates.
//
// The linear summary statistics (element count, volume sum and the sketch
// sums Z, R) are additionally maintained incrementally — merges leave them
// unchanged and expiry subtracts the dropped bucket — so Sketch and
// EstimateMean run in O(l) and O(1) instead of walking every bucket.
type Histogram struct {
	cfg     Config
	sketchL int
	// buckets is ordered oldest-first; the newest bucket is at the end.
	buckets []Bucket
	now     int64
	started bool

	// Incrementally maintained linear totals over all buckets.
	totalCount int64
	totalSum   float64
	totalZ     []float64
	totalR     []float64
}

// New validates cfg and returns an empty histogram.
func New(cfg Config) (*Histogram, error) {
	if cfg.WindowLen < 1 {
		return nil, fmt.Errorf("%w: window length %d", ErrConfig, cfg.WindowLen)
	}
	if math.IsNaN(cfg.Epsilon) || cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("%w: epsilon %v", ErrConfig, cfg.Epsilon)
	}
	h := &Histogram{cfg: cfg}
	if cfg.Gen != nil {
		h.sketchL = cfg.Gen.SketchLen()
		h.totalZ = make([]float64, h.sketchL)
		h.totalR = make([]float64, h.sketchL)
	}
	return h, nil
}

// WindowLen returns the configured window length n.
func (h *Histogram) WindowLen() int { return h.cfg.WindowLen }

// Epsilon returns the configured approximation parameter.
func (h *Histogram) Epsilon() float64 { return h.cfg.Epsilon }

// SketchLen returns l, or 0 when running without sketches.
func (h *Histogram) SketchLen() int { return h.sketchL }

// Now returns the time of the most recent update.
func (h *Histogram) Now() int64 { return h.now }

// NumBuckets returns the current number of buckets (the space the summary
// occupies is NumBuckets·O(l)).
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Count returns the number of elements currently summarized.
func (h *Histogram) Count() int64 { return h.totalCount }

// Update ingests the measurement x for interval t, running the three steps
// of Fig. 3: expire, insert, merge. Updates must have strictly increasing t.
func (h *Histogram) Update(t int64, x float64) error {
	var row []float64
	if h.cfg.Gen != nil {
		row = h.cfg.Gen.Row(t)
	}
	return h.UpdateWithRow(t, x, row)
}

// UpdateWithRow is Update with the caller supplying the shared random row
// r_{t,·} (row must be Gen.Row(t) or nil when no generator is configured).
// Monitors tracking many flows compute the row once per interval and share
// it across their histograms.
func (h *Histogram) UpdateWithRow(t int64, x float64, row []float64) error {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return fmt.Errorf("%w: x = %v at t = %d", ErrNotFinite, x, t)
	}
	if h.started && t <= h.now {
		return fmt.Errorf("%w: t = %d, current time %d", ErrOutOfOrder, t, h.now)
	}
	if len(row) != h.sketchL {
		return fmt.Errorf("%w: row of %d for sketch length %d", ErrConfig, len(row), h.sketchL)
	}
	h.now = t
	h.started = true

	// Step 1: delete expired buckets. A bucket expires when its oldest
	// element leaves the window [t−n+1, t].
	expireBefore := t - int64(h.cfg.WindowLen)
	drop := 0
	for drop < len(h.buckets) && h.buckets[drop].Timestamp <= expireBefore {
		drop++
	}
	if drop > 0 {
		h.buckets = h.buckets[:copy(h.buckets, h.buckets[drop:])]
		// Rebase the incremental totals from the surviving buckets instead of
		// subtracting the dropped contributions: repeated subtraction leaves a
		// rounding residue that never expires, so over long runs with
		// large-magnitude volumes Sketch()/EstimateMean() drift away from the
		// bucket-list ground truth. Rebasing bounds the accumulated error to
		// one window's worth of additions.
		h.rebaseTotals()
	}

	// Step 2: create the singleton bucket B1 for the new element.
	nb := Bucket{Timestamp: t, Count: 1, Mean: x, Var: 0}
	if h.sketchL > 0 {
		nb.Z = make([]float64, h.sketchL)
		nb.R = append([]float64(nil), row...)
		for k, r := range row {
			nb.Z[k] = x * r
		}
	}
	h.totalCount++
	h.totalSum += x
	for k := range nb.Z {
		h.totalZ[k] += nb.Z[k]
		h.totalR[k] += nb.R[k]
	}
	h.buckets = append(h.buckets, nb)

	// Step 3: traverse from the newest side, maintaining the running union
	// B_B of the p newest buckets, and merge the candidate pair
	// (B_{p+1}, B_{p+2}) when both rules pass.
	h.mergeScan()
	return nil
}

// rebaseTotals recomputes totalCount/totalSum/totalZ/totalR from the bucket
// list. Merging buckets keeps the totals exact (sums are redistributed, not
// changed), so this only needs to run when expiry drops buckets. Cost is
// O(buckets·l), amortized over the ≥1 updates it took to fill the dropped
// bucket.
func (h *Histogram) rebaseTotals() {
	h.totalCount = 0
	h.totalSum = 0
	for k := range h.totalZ {
		h.totalZ[k] = 0
		h.totalR[k] = 0
	}
	for i := range h.buckets {
		b := &h.buckets[i]
		h.totalCount += b.Count
		h.totalSum += float64(b.Count) * b.Mean
		for k := range b.Z {
			h.totalZ[k] += b.Z[k]
			h.totalR[k] += b.R[k]
		}
	}
}

// mergeScan implements step 3 of Fig. 3.
func (h *Histogram) mergeScan() {
	eps := h.cfg.Epsilon
	halfWindow := float64(h.cfg.WindowLen) / 2

	last := len(h.buckets) - 1
	// Running stats of B_B = the p newest buckets; start with p = 1.
	bbCount := h.buckets[last].Count
	bbMean := h.buckets[last].Mean
	bbVar := h.buckets[last].Var
	p := 1

	for {
		newerIdx := last - p     // B_{p+1}
		olderIdx := newerIdx - 1 // B_{p+2}
		if olderIdx < 0 {
			return
		}
		older := &h.buckets[olderIdx]
		newer := &h.buckets[newerIdx]
		aCount, aVar := mergedStats(older, newer)
		if float64(aCount)+float64(bbCount) > halfWindow {
			return
		}
		// Rule 2: n_A ≤ (ε/10)·n_B.
		// Rule 1: V_{A∪B} − V_B = V_A + n_A n_B (μ_A−μ_B)²/(n_A+n_B) ≤ (ε/5)·V_B.
		aMean := (float64(older.Count)*older.Mean + float64(newer.Count)*newer.Mean) /
			float64(aCount)
		diff := aMean - bbMean
		cross := float64(aCount) * float64(bbCount) / float64(aCount+bbCount) * diff * diff
		if float64(aCount) <= eps/10*float64(bbCount) && aVar+cross <= eps/5*bbVar {
			older.mergeInto(newer)
			h.buckets = append(h.buckets[:newerIdx], h.buckets[newerIdx+1:]...)
			last--
			// p and B_B unchanged; retest the new candidate pair.
			continue
		}
		// Advance: fold B_{p+1} into B_B.
		nb, bb := float64(newer.Count), float64(bbCount)
		total := nb + bb
		d := newer.Mean - bbMean
		bbVar = newer.Var + bbVar + nb*bb/total*d*d
		bbMean = (nb*newer.Mean + bb*bbMean) / total
		bbCount += newer.Count
		p++
	}
}

// Aggregate merges all buckets into one summary B_all = ∪_p B_p. The
// returned bucket owns fresh Z/R slices. An empty histogram yields a zero
// bucket.
func (h *Histogram) Aggregate() Bucket {
	var all Bucket
	if len(h.buckets) == 0 {
		if h.sketchL > 0 {
			all.Z = make([]float64, h.sketchL)
			all.R = make([]float64, h.sketchL)
		}
		return all
	}
	first := h.buckets[0]
	all = Bucket{Timestamp: first.Timestamp, Count: first.Count, Mean: first.Mean, Var: first.Var}
	if h.sketchL > 0 {
		all.Z = append([]float64(nil), first.Z...)
		all.R = append([]float64(nil), first.R...)
	}
	for i := 1; i < len(h.buckets); i++ {
		all.mergeInto(&h.buckets[i])
	}
	return all
}

// EstimateVariance returns V̂, the ε-approximate window variance (sum of
// squared deviations, eq. 10). It folds count/mean/var across the bucket list
// with the merge recurrence and never touches the Z/R sketch slices, so it is
// allocation-free — Aggregate() deep-copies O(buckets·l) floats, which is too
// expensive for the per-interval monitor path.
func (h *Histogram) EstimateVariance() float64 {
	count, _, variance := h.aggregateMoments()
	if count == 0 {
		return 0
	}
	return variance
}

// aggregateMoments folds (count, mean, var) across the bucket list using the
// same pairwise-merge recurrence as Bucket.mergeInto, skipping the sketch
// slices.
func (h *Histogram) aggregateMoments() (count int64, mean, variance float64) {
	if len(h.buckets) == 0 {
		return 0, 0, 0
	}
	first := &h.buckets[0]
	count, mean, variance = first.Count, first.Mean, first.Var
	for i := 1; i < len(h.buckets); i++ {
		b := &h.buckets[i]
		na, nb := float64(count), float64(b.Count)
		total := na + nb
		d := mean - b.Mean
		variance = variance + b.Var + na*nb/total*d*d
		mean = (na*mean + nb*b.Mean) / total
		count += b.Count
	}
	return count, mean, variance
}

// EstimateMean returns the mean of the summarized elements (μ_all).
func (h *Histogram) EstimateMean() float64 {
	if h.totalCount == 0 {
		return 0
	}
	return h.totalSum / float64(h.totalCount)
}

// Sketch returns ẑ_k = (1/√l)·(Z_all,k − μ_all·R_all,k) for k = 0…l−1
// (eq. 17, corrected form), or nil when the histogram runs without a
// generator. It runs in O(l) off the incrementally maintained totals.
func (h *Histogram) Sketch() []float64 {
	if h.sketchL == 0 {
		return nil
	}
	mean := h.EstimateMean()
	out := make([]float64, h.sketchL)
	scale := 1 / math.Sqrt(float64(h.sketchL))
	for k := range out {
		out[k] = scale * (h.totalZ[k] - mean*h.totalR[k])
	}
	return out
}

// Buckets returns a deep copy of the current bucket list (oldest first),
// for inspection, testing and serialization.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.buckets))
	for i, b := range h.buckets {
		out[i] = Bucket{Timestamp: b.Timestamp, Count: b.Count, Mean: b.Mean, Var: b.Var}
		if b.Z != nil {
			out[i].Z = append([]float64(nil), b.Z...)
			out[i].R = append([]float64(nil), b.R...)
		}
	}
	return out
}

// Reset discards all state, keeping the configuration.
func (h *Histogram) Reset() {
	h.buckets = h.buckets[:0]
	h.now = 0
	h.started = false
	h.totalCount = 0
	h.totalSum = 0
	for k := range h.totalZ {
		h.totalZ[k] = 0
		h.totalR[k] = 0
	}
}
