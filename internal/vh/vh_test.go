package vh

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streampca/internal/randproj"
)

// exactWindow computes the exact statistics of the last n elements of data
// (or all of data when shorter).
func exactWindow(data []float64, n int) (mean, variance float64, count int) {
	if len(data) > n {
		data = data[len(data)-n:]
	}
	count = len(data)
	if count == 0 {
		return 0, 0, 0
	}
	for _, x := range data {
		mean += x
	}
	mean /= float64(count)
	for _, x := range data {
		d := x - mean
		variance += d * d
	}
	return mean, variance, count
}

func mustHist(t *testing.T, cfg Config) *Histogram {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func feed(t *testing.T, h *Histogram, data []float64) {
	t.Helper()
	for i, x := range data {
		if err := h.Update(int64(i+1), x); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{name: "valid", cfg: Config{WindowLen: 10, Epsilon: 0.1}, ok: true},
		{name: "zero window", cfg: Config{Epsilon: 0.1}},
		{name: "eps zero", cfg: Config{WindowLen: 10}},
		{name: "eps one", cfg: Config{WindowLen: 10, Epsilon: 1}},
		{name: "eps NaN", cfg: Config{WindowLen: 10, Epsilon: math.NaN()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestUpdateRejectsBadInput(t *testing.T) {
	h := mustHist(t, Config{WindowLen: 10, Epsilon: 0.1})
	if err := h.Update(1, math.NaN()); !errors.Is(err, ErrNotFinite) {
		t.Fatalf("NaN: %v", err)
	}
	if err := h.Update(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Update(5, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("same t: %v", err)
	}
	if err := h.Update(3, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("older t: %v", err)
	}
}

func TestSmallWindowExact(t *testing.T) {
	// With ε small the merge rules barely fire, so the histogram stays an
	// exact sliding-window summary.
	h := mustHist(t, Config{WindowLen: 4, Epsilon: 0.01})
	data := []float64{1, 2, 3, 4, 5, 6}
	feed(t, h, data)
	wantMean, wantVar, wantCount := exactWindow(data, 4)
	if got := h.Count(); got != int64(wantCount) {
		t.Fatalf("count = %d, want %d", got, wantCount)
	}
	if got := h.EstimateMean(); math.Abs(got-wantMean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
	if got := h.EstimateVariance(); math.Abs(got-wantVar) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, wantVar)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := mustHist(t, Config{WindowLen: 5, Epsilon: 0.1})
	if h.EstimateVariance() != 0 || h.EstimateMean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.NumBuckets() != 0 {
		t.Fatal("empty histogram has no buckets")
	}
	if got := h.Sketch(); got != nil {
		t.Fatalf("no-generator sketch = %v, want nil", got)
	}
}

func TestExpiry(t *testing.T) {
	h := mustHist(t, Config{WindowLen: 3, Epsilon: 0.01})
	feed(t, h, []float64{10, 20, 30, 40, 50})
	// Window is {30, 40, 50}.
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.EstimateMean(); math.Abs(got-40) > 1e-12 {
		t.Fatalf("mean = %v, want 40", got)
	}
}

func TestExpiryWithTimeGaps(t *testing.T) {
	h := mustHist(t, Config{WindowLen: 5, Epsilon: 0.01})
	if err := h.Update(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := h.Update(2, 200); err != nil {
		t.Fatal(err)
	}
	// Jump far ahead: both previous elements expire at once.
	if err := h.Update(100, 7); err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != 1 {
		t.Fatalf("count after gap = %d, want 1", got)
	}
	if got := h.EstimateMean(); got != 7 {
		t.Fatalf("mean after gap = %v, want 7", got)
	}
}

func TestLemma1VarianceBound(t *testing.T) {
	// (1−ε)V ≤ V̂ ≤ V across epsilons and workloads.
	workloads := map[string]func(rng *rand.Rand, i int) float64{
		"uniform":  func(rng *rand.Rand, _ int) float64 { return rng.Float64() * 100 },
		"gaussian": func(rng *rand.Rand, _ int) float64 { return 50 + 10*rng.NormFloat64() },
		"trend":    func(rng *rand.Rand, i int) float64 { return float64(i) + rng.NormFloat64() },
		"spiky": func(rng *rand.Rand, i int) float64 {
			v := 10 + rng.NormFloat64()
			if i%97 == 0 {
				v += 500
			}
			return v
		},
	}
	for name, gen := range workloads {
		for _, eps := range []float64{0.05, 0.2, 0.5} {
			rng := rand.New(rand.NewSource(31))
			n := 256
			h := mustHist(t, Config{WindowLen: n, Epsilon: eps})
			var data []float64
			for i := 0; i < 4*n; i++ {
				x := gen(rng, i)
				data = append(data, x)
				if err := h.Update(int64(i+1), x); err != nil {
					t.Fatal(err)
				}
				if i < n/2 {
					continue
				}
				_, exact, _ := exactWindow(data, n)
				est := h.EstimateVariance()
				if est > exact*(1+1e-9)+1e-9 {
					t.Fatalf("%s eps=%v i=%d: V̂ = %v exceeds V = %v", name, eps, i, est, exact)
				}
				if est < (1-eps)*exact-1e-9 {
					t.Fatalf("%s eps=%v i=%d: V̂ = %v below (1−ε)V = %v", name, eps, i, (1-eps)*exact, est)
				}
			}
		}
	}
}

func TestBucketCompression(t *testing.T) {
	// With a generous ε the histogram must hold far fewer buckets than the
	// window, demonstrating the O((1/ε)·log n) summary.
	rng := rand.New(rand.NewSource(8))
	n := 1024
	h := mustHist(t, Config{WindowLen: n, Epsilon: 0.5})
	for i := 0; i < 3*n; i++ {
		if err := h.Update(int64(i+1), 100+rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.NumBuckets(); got >= n/2 {
		t.Fatalf("buckets = %d for window %d: no compression", got, n)
	}
}

func TestBucketsOrderingAndCopy(t *testing.T) {
	h := mustHist(t, Config{WindowLen: 10, Epsilon: 0.1})
	feed(t, h, []float64{1, 2, 3})
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i].Timestamp <= bs[i-1].Timestamp {
			t.Fatal("buckets must be ordered oldest first")
		}
	}
	bs[0].Mean = 999 // must not affect the histogram
	if h.EstimateMean() == 999 {
		t.Fatal("Buckets must return a copy")
	}
}

func TestReset(t *testing.T) {
	h := mustHist(t, Config{WindowLen: 10, Epsilon: 0.1})
	feed(t, h, []float64{1, 2, 3})
	h.Reset()
	if h.Count() != 0 || h.NumBuckets() != 0 {
		t.Fatal("reset must clear state")
	}
	// Time restarts after reset.
	if err := h.Update(1, 5); err != nil {
		t.Fatalf("update after reset: %v", err)
	}
}

func newSketchGen(t *testing.T, l int, window int) *randproj.Generator {
	t.Helper()
	g, err := randproj.NewGenerator(randproj.Config{Seed: 99, SketchLen: l, WindowLen: window})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSketchExactWithoutMerging(t *testing.T) {
	// ε tiny → no merging → the sketch equals the exact projection of the
	// centered window column.
	l, n := 12, 64
	g := newSketchGen(t, l, n)
	h := mustHist(t, Config{WindowLen: n, Epsilon: 0.001, Gen: g})
	rng := rand.New(rand.NewSource(77))
	var data []float64
	for i := 0; i < 2*n; i++ {
		x := 100 + 10*rng.NormFloat64()
		data = append(data, x)
		if err := h.Update(int64(i+1), x); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Sketch()
	if len(got) != l {
		t.Fatalf("sketch length = %d", len(got))
	}

	// Exact: center the last n values, project with the same r_{tk}.
	window := data[len(data)-n:]
	mean, _, _ := exactWindow(data, n)
	t0 := int64(len(data) - n + 1)
	want := make([]float64, l)
	for i, x := range window {
		tIdx := t0 + int64(i)
		for k := 0; k < l; k++ {
			want[k] += (x - mean) * g.At(tIdx, k)
		}
	}
	scale := 1 / math.Sqrt(float64(l))
	for k := range want {
		want[k] *= scale
		if math.Abs(got[k]-want[k]) > 1e-8*math.Max(1, math.Abs(want[k])) {
			t.Fatalf("sketch[%d] = %v, want %v", k, got[k], want[k])
		}
	}
}

func TestSketchApproximatesProjectionWithMerging(t *testing.T) {
	// With moderate ε and merging active, the sketch must stay close to the
	// exact projection in relative L2 error.
	l, n := 16, 256
	g := newSketchGen(t, l, n)
	eps := 0.1
	h := mustHist(t, Config{WindowLen: n, Epsilon: eps, Gen: g})
	rng := rand.New(rand.NewSource(123))
	var data []float64
	for i := 0; i < 4*n; i++ {
		x := 1000 + 50*rng.NormFloat64()
		data = append(data, x)
		if err := h.Update(int64(i+1), x); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Sketch()
	window := data[len(data)-n:]
	mean, _, _ := exactWindow(data, n)
	t0 := int64(len(data) - n + 1)
	want := make([]float64, l)
	for i, x := range window {
		for k := 0; k < l; k++ {
			want[k] += (x - mean) * g.At(t0+int64(i), k)
		}
	}
	var num, den float64
	scale := 1 / math.Sqrt(float64(l))
	for k := range want {
		want[k] *= scale
		d := got[k] - want[k]
		num += d * d
		den += want[k] * want[k]
	}
	if den == 0 {
		t.Fatal("degenerate reference sketch")
	}
	if rel := math.Sqrt(num / den); rel > 0.5 {
		t.Fatalf("relative sketch error %v too large", rel)
	}
}

func TestAggregateMergesAllBuckets(t *testing.T) {
	g := newSketchGen(t, 4, 8)
	h := mustHist(t, Config{WindowLen: 8, Epsilon: 0.01, Gen: g})
	feed(t, h, []float64{1, 2, 3, 4})
	all := h.Aggregate()
	if all.Count != 4 {
		t.Fatalf("aggregate count = %d", all.Count)
	}
	if math.Abs(all.Mean-2.5) > 1e-12 {
		t.Fatalf("aggregate mean = %v", all.Mean)
	}
	if math.Abs(all.Var-5) > 1e-12 { // Σ(x−2.5)² = 2.25+0.25+0.25+2.25
		t.Fatalf("aggregate var = %v", all.Var)
	}
	if len(all.Z) != 4 || len(all.R) != 4 {
		t.Fatal("aggregate must carry sketch sums")
	}
}

func TestMergeIntoFormulae(t *testing.T) {
	// Merge two buckets and compare against direct computation over the
	// concatenated samples.
	xs := []float64{1, 4, 7}
	ys := []float64{10, 13}
	a := bucketOf(1, xs)
	b := bucketOf(4, ys)
	a.mergeInto(&b)
	allVals := append(append([]float64(nil), xs...), ys...)
	wantMean, wantVar, _ := exactWindow(allVals, len(allVals))
	if a.Count != 5 || math.Abs(a.Mean-wantMean) > 1e-12 || math.Abs(a.Var-wantVar) > 1e-12 {
		t.Fatalf("merged = %+v, want mean %v var %v", a, wantMean, wantVar)
	}
	if a.Timestamp != 1 {
		t.Fatalf("merged timestamp = %d, want the older bucket's", a.Timestamp)
	}
}

func bucketOf(ts int64, vals []float64) Bucket {
	var b Bucket
	b.Timestamp = ts
	b.Count = int64(len(vals))
	for _, v := range vals {
		b.Mean += v
	}
	b.Mean /= float64(len(vals))
	for _, v := range vals {
		d := v - b.Mean
		b.Var += d * d
	}
	return b
}

// Property: merging bucketized prefixes reproduces exact whole-sample stats
// regardless of how the sample is partitioned.
func TestQuickMergePartitionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 50
		}
		cut := 1 + r.Intn(n-1)
		a := bucketOf(1, vals[:cut])
		b := bucketOf(int64(cut+1), vals[cut:])
		a.mergeInto(&b)
		wantMean, wantVar, _ := exactWindow(vals, n)
		return math.Abs(a.Mean-wantMean) < 1e-9*math.Max(1, math.Abs(wantMean)) &&
			math.Abs(a.Var-wantVar) < 1e-8*math.Max(1, wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the incrementally maintained linear totals (count, mean, Z, R)
// always agree with a full aggregate over the bucket list.
func TestQuickIncrementalTotalsMatchAggregate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16 + r.Intn(64)
		l := 1 + r.Intn(8)
		g, err := randproj.NewGenerator(randproj.Config{Seed: uint64(seed) + 1, SketchLen: l})
		if err != nil {
			return false
		}
		h, err := New(Config{WindowLen: n, Epsilon: 0.05 + 0.5*r.Float64(), Gen: g})
		if err != nil {
			return false
		}
		tNow := int64(0)
		for i := 0; i < 3*n; i++ {
			tNow += 1 + int64(r.Intn(3)) // occasional gaps exercise expiry
			if err := h.Update(tNow, r.Float64()*100); err != nil {
				return false
			}
		}
		agg := h.Aggregate()
		if h.Count() != agg.Count {
			return false
		}
		if math.Abs(h.EstimateMean()-agg.Mean) > 1e-9*math.Max(1, math.Abs(agg.Mean)) {
			return false
		}
		sk := h.Sketch()
		scale := 1 / math.Sqrt(float64(l))
		for k := 0; k < l; k++ {
			want := scale * (agg.Z[k] - agg.Mean*agg.R[k])
			if math.Abs(sk[k]-want) > 1e-6*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLongRunTotalsDrift is the regression test for the incremental-totals
// drift bug: expiry used to *subtract* each dropped bucket's contributions
// from totalSum/totalZ/totalR forever, so over long runs with large-magnitude
// volumes the rounding residue of those subtractions accumulated and
// Sketch()/EstimateMean() diverged from the bucket-list ground truth. The
// totals are now rebased from the surviving buckets whenever expiry drops a
// bucket, which bounds the divergence by one window's worth of additions.
//
// The workload alternates huge-magnitude (1e12) and unit-magnitude phases:
// after a huge phase expires the surviving totals are small, so any residue
// left behind by the departed buckets dominates the relative error.
func TestLongRunTotalsDrift(t *testing.T) {
	const (
		window  = 256
		l       = 4
		phase   = 1024 // intervals per magnitude regime
		updates = 1_000_000
	)
	g, err := randproj.NewGenerator(randproj.Config{Seed: 99, SketchLen: l})
	if err != nil {
		t.Fatal(err)
	}
	h := mustHist(t, Config{WindowLen: window, Epsilon: 0.3, Gen: g})
	r := rand.New(rand.NewSource(7))
	for i := 0; i < updates; i++ {
		x := 1 + r.Float64()
		if (i/phase)%2 == 1 {
			x *= 1e12
		}
		if err := h.Update(int64(i+1), x); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	// The run ends deep inside a unit-magnitude phase (updates/phase is even,
	// so the final phase index is odd... make sure of it below) — assert we
	// really are comparing small totals against ground truth.
	if (updates-1)/phase%2 != 0 {
		// keep the final window in the unit regime: the constant choice above
		// must end on an even (unit) phase.
		t.Fatalf("workload must end in a unit-magnitude phase")
	}
	agg := h.Aggregate()
	if h.Count() != agg.Count {
		t.Fatalf("Count() = %d, aggregate count = %d", h.Count(), agg.Count)
	}
	if rel := math.Abs(h.EstimateMean()-agg.Mean) / math.Max(1e-300, math.Abs(agg.Mean)); rel > 1e-9 {
		t.Errorf("EstimateMean drifted: rel err %.3e (got %v, bucket-list %v)", rel, h.EstimateMean(), agg.Mean)
	}
	sk := h.Sketch()
	scale := 1 / math.Sqrt(float64(l))
	for k := 0; k < l; k++ {
		want := scale * (agg.Z[k] - agg.Mean*agg.R[k])
		rel := math.Abs(sk[k]-want) / math.Max(1, math.Abs(want))
		if rel > 1e-9 {
			t.Errorf("Sketch()[%d] drifted: rel err %.3e (got %v, bucket-list %v)", k, rel, sk[k], want)
		}
	}
}

// TestEstimateVarianceMatchesAggregate pins the sketch-free moment fold to
// the Aggregate() reference: both walk the bucket list with the same merge
// recurrence, so they must agree bit-for-bit.
func TestEstimateVarianceMatchesAggregate(t *testing.T) {
	g, err := randproj.NewGenerator(randproj.Config{Seed: 5, SketchLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	h := mustHist(t, Config{WindowLen: 128, Epsilon: 0.1, Gen: g})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		if err := h.Update(int64(i+1), 10+100*r.Float64()); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if i%97 == 0 {
			agg := h.Aggregate()
			if got := h.EstimateVariance(); got != agg.Var {
				t.Fatalf("update %d: EstimateVariance() = %v, Aggregate().Var = %v", i, got, agg.Var)
			}
		}
	}
	// Empty histogram.
	h.Reset()
	if got := h.EstimateVariance(); got != 0 {
		t.Fatalf("empty EstimateVariance() = %v", got)
	}
}

// BenchmarkEstimateVariance shows the hot-path variance read is
// allocation-free (it used to call Aggregate(), deep-copying every bucket's
// Z/R slices).
func BenchmarkEstimateVariance(b *testing.B) {
	g, err := randproj.NewGenerator(randproj.Config{Seed: 5, SketchLen: 200})
	if err != nil {
		b.Fatal(err)
	}
	h, err := New(Config{WindowLen: 4032, Epsilon: 0.01, Gen: g})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 8064; i++ {
		if err := h.Update(int64(i+1), 10+100*r.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += h.EstimateVariance()
	}
	_ = sink
}

func TestUpdateWithRowValidation(t *testing.T) {
	g := newSketchGen(t, 4, 8)
	h := mustHist(t, Config{WindowLen: 8, Epsilon: 0.1, Gen: g})
	if err := h.UpdateWithRow(1, 5, []float64{1, 2}); !errors.Is(err, ErrConfig) {
		t.Fatalf("short row: %v", err)
	}
	if err := h.UpdateWithRow(1, 5, g.Row(1)); err != nil {
		t.Fatal(err)
	}
	// Reset clears the incremental totals too.
	h.Reset()
	if h.Count() != 0 || h.EstimateMean() != 0 {
		t.Fatal("reset must clear totals")
	}
	for _, v := range h.Sketch() {
		if v != 0 {
			t.Fatal("reset must clear sketch totals")
		}
	}
}

// Property: Lemma 1 holds for random streams and epsilons.
func TestQuickLemma1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		eps := 0.05 + 0.6*r.Float64()
		n := 32 + r.Intn(128)
		h, err := New(Config{WindowLen: n, Epsilon: eps})
		if err != nil {
			return false
		}
		var data []float64
		total := n + r.Intn(3*n)
		for i := 0; i < total; i++ {
			x := r.Float64() * 1000
			data = append(data, x)
			if err := h.Update(int64(i+1), x); err != nil {
				return false
			}
		}
		_, exact, _ := exactWindow(data, n)
		est := h.EstimateVariance()
		return est <= exact*(1+1e-9)+1e-9 && est >= (1-eps)*exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
