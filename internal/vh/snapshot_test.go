package vh

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	g := newSketchGen(t, 6, 64)
	cfg := Config{WindowLen: 64, Epsilon: 0.1, Gen: g}
	h := mustHist(t, cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 1; i <= 100; i++ {
		if err := h.Update(int64(i), 500+20*rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	snap := h.Snapshot()

	// Gob round-trip, as a monitor checkpoint would do.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}

	restored := mustHist(t, cfg)
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != h.Count() || restored.Now() != h.Now() {
		t.Fatalf("restored count/now = %d/%d, want %d/%d",
			restored.Count(), restored.Now(), h.Count(), h.Now())
	}
	if math.Abs(restored.EstimateMean()-h.EstimateMean()) > 1e-12 {
		t.Fatal("restored mean differs")
	}
	if math.Abs(restored.EstimateVariance()-h.EstimateVariance()) > 1e-9 {
		t.Fatal("restored variance differs")
	}
	a, b := h.Sketch(), restored.Sketch()
	for k := range a {
		// The restored totals are recomputed from the buckets, so the
		// floating-point accumulation order differs from the incremental
		// path; agreement is to rounding of the ~Σ|x·r| magnitudes.
		if math.Abs(a[k]-b[k]) > 1e-8*math.Max(1, math.Abs(a[k])) {
			t.Fatalf("restored sketch differs at %d: %v vs %v", k, a[k], b[k])
		}
	}

	// Both continue identically.
	for i := 101; i <= 160; i++ {
		x := 500 + 20*rng.NormFloat64()
		if err := h.Update(int64(i), x); err != nil {
			t.Fatal(err)
		}
		if err := restored.Update(int64(i), x); err != nil {
			t.Fatal(err)
		}
	}
	a, b = h.Sketch(), restored.Sketch()
	for k := range a {
		if math.Abs(a[k]-b[k]) > 1e-9 {
			t.Fatalf("post-restore sketches diverged at %d", k)
		}
	}
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	g := newSketchGen(t, 2, 8)
	h := mustHist(t, Config{WindowLen: 8, Epsilon: 0.1, Gen: g})
	if err := h.Update(1, 5); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot()
	snap.Buckets[0].Mean = 999
	snap.Buckets[0].Z[0] = 999
	if h.EstimateMean() == 999 {
		t.Fatal("snapshot must not alias histogram state")
	}
}

func TestRestoreValidation(t *testing.T) {
	g := newSketchGen(t, 3, 16)
	cfg := Config{WindowLen: 16, Epsilon: 0.1, Gen: g}
	h := mustHist(t, cfg)
	feed(t, h, []float64{1, 2, 3, 4})
	good := h.Snapshot()

	fresh := func() *Histogram { return mustHist(t, cfg) }

	bad := good
	bad.WindowLen = 99
	if err := fresh().Restore(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("window mismatch: %v", err)
	}
	bad = good
	bad.SketchLen = 99
	if err := fresh().Restore(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("sketch mismatch: %v", err)
	}

	corrupt := h.Snapshot()
	corrupt.Buckets[1].Timestamp = corrupt.Buckets[0].Timestamp
	if err := fresh().Restore(corrupt); !errors.Is(err, ErrConfig) {
		t.Fatalf("non-increasing timestamps: %v", err)
	}

	corrupt = h.Snapshot()
	corrupt.Buckets[0].Count = 0
	if err := fresh().Restore(corrupt); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero count: %v", err)
	}

	corrupt = h.Snapshot()
	corrupt.Buckets[0].Var = math.NaN()
	if err := fresh().Restore(corrupt); !errors.Is(err, ErrConfig) {
		t.Fatalf("NaN variance: %v", err)
	}

	corrupt = h.Snapshot()
	corrupt.Buckets[0].Z = corrupt.Buckets[0].Z[:1]
	if err := fresh().Restore(corrupt); !errors.Is(err, ErrConfig) {
		t.Fatalf("short sketch array: %v", err)
	}

	corrupt = h.Snapshot()
	corrupt.Buckets[0].Z[0] = math.Inf(1)
	if err := fresh().Restore(corrupt); !errors.Is(err, ErrConfig) {
		t.Fatalf("non-finite sketch sum: %v", err)
	}

	corrupt = h.Snapshot()
	corrupt.Now = 1 // newest bucket is now "in the future"
	if err := fresh().Restore(corrupt); !errors.Is(err, ErrConfig) {
		t.Fatalf("future bucket: %v", err)
	}
}

func TestRestoreEmptySnapshot(t *testing.T) {
	g := newSketchGen(t, 2, 8)
	cfg := Config{WindowLen: 8, Epsilon: 0.1, Gen: g}
	src := mustHist(t, cfg)
	dst := mustHist(t, cfg)
	feed(t, dst, []float64{1, 2}) // pre-existing state is replaced
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if dst.Count() != 0 || dst.NumBuckets() != 0 {
		t.Fatal("restore of empty snapshot must clear state")
	}
	if err := dst.Update(1, 7); err != nil {
		t.Fatalf("update after empty restore: %v", err)
	}
}
