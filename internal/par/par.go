// Package par is the parallel compute layer shared by the linear-algebra
// kernels (internal/mat), the per-flow sketch updates (internal/core) and
// any future hot path: deterministic range-sharded fork/join over a bounded
// number of workers.
//
// Determinism is the design center. Every helper splits [0, n) into the
// same contiguous shards for a given (n, workers, grain) triple, and callers
// arrange for each shard to own disjoint output memory. Worker count and
// goroutine scheduling then change only *when* a shard runs, never *what* it
// computes — results are bit-identical for any worker count, which the
// property tests in internal/mat and internal/core enforce.
//
// Two execution styles are provided:
//
//   - For / ForErr spawn ephemeral goroutines per call. Right for one-shot
//     kernels (a Gram product, a monitor interval update) whose per-call
//     work dwarfs the ~µs goroutine start cost.
//   - Pool keeps workers parked on a channel for call sites that issue many
//     small barriers in a row (the Jacobi eigensolver runs thousands of
//     rotation rounds per decomposition).
//
// Small inputs fall back to inline serial execution: when the shard count
// computed from grain is 1, no goroutines are involved at all.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values < 1 (the "auto" zero
// value of the Workers config fields) map to runtime.GOMAXPROCS(0), anything
// else is returned unchanged.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// shards returns the deterministic shard boundaries for n items split across
// at most workers shards of at least grain items each. The returned slice
// has len = shardCount+1 with bounds[i] ≤ bounds[i+1]; shard i is
// [bounds[i], bounds[i+1]). Guaranteed to cover [0, n) exactly once.
func shards(n, workers, grain int) []int {
	if grain < 1 {
		grain = 1
	}
	count := workers
	if maxShards := (n + grain - 1) / grain; count > maxShards {
		count = maxShards
	}
	if count < 1 {
		count = 1
	}
	bounds := make([]int, count+1)
	base, rem := n/count, n%count
	for i := 1; i <= count; i++ {
		bounds[i] = bounds[i-1] + base
		if i <= rem {
			bounds[i]++
		}
	}
	return bounds
}

// For runs fn over [0, n) split into contiguous shards across up to workers
// goroutines. grain is the minimum shard size; when only one shard results
// (or workers ≤ 1), fn runs inline on the caller's goroutine. fn must write
// only to memory owned by its [lo, hi) range; under that contract the result
// is identical for every worker count.
func For(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	bounds := shards(n, workers, grain)
	count := len(bounds) - 1
	if workers <= 1 || count == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(count - 1)
	for i := 1; i < count; i++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(bounds[i], bounds[i+1])
	}
	// The caller's goroutine takes the first shard instead of idling.
	fn(bounds[0], bounds[1])
	wg.Wait()
}

// ForErr is For with error propagation. Each shard stops at its first error;
// the error returned is the one from the lowest-numbered failing shard, so
// the reported failure is deterministic across worker counts. Note that on
// error, shards other than the failing one may still have completed — the
// caller's per-item state reflects every item whose shard ran to completion.
func ForErr(workers, n, grain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	bounds := shards(n, workers, grain)
	count := len(bounds) - 1
	if workers <= 1 || count == 1 {
		return fn(0, n)
	}
	errs := make([]error, count)
	var wg sync.WaitGroup
	wg.Add(count - 1)
	for i := 1; i < count; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(bounds[i], bounds[i+1])
		}(i)
	}
	errs[0] = fn(bounds[0], bounds[1])
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// task is one shard dispatched to a pool worker.
type task struct {
	lo, hi int
	fn     func(lo, hi int)
	wg     *sync.WaitGroup
}

// Pool is a bounded set of parked workers for call sites that issue many
// consecutive parallel loops (each For on a Pool costs two channel operations
// per participating worker instead of a goroutine spawn). A Pool with 1
// worker starts no goroutines and runs everything inline.
//
// A Pool must be released with Close; using it after Close panics. For may
// only be called from one goroutine at a time.
type Pool struct {
	workers int
	work    chan task
	closed  bool
}

// NewPool starts a pool with the resolved worker count (requested < 1 means
// auto, see Workers).
func NewPool(requested int) *Pool {
	w := Workers(requested)
	p := &Pool{workers: w}
	if w > 1 {
		work := make(chan task)
		p.work = work
		for i := 1; i < w; i++ {
			go func() {
				for t := range work {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool's resolved worker count.
func (p *Pool) Workers() int { return p.workers }

// For runs fn over [0, n) sharded across the pool's workers, with the same
// contract and determinism guarantee as the package-level For.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	bounds := shards(n, p.workers, grain)
	count := len(bounds) - 1
	if p.workers <= 1 || count == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(count - 1)
	for i := 1; i < count; i++ {
		p.work <- task{lo: bounds[i], hi: bounds[i+1], fn: fn, wg: &wg}
	}
	fn(bounds[0], bounds[1])
	wg.Wait()
}

// Close releases the pool's workers. Close is not safe to race with For;
// callers serialize use and Close (a Pool is owned by one computation).
func (p *Pool) Close() {
	if p.work != nil && !p.closed {
		close(p.work)
		p.closed = true
	}
}
