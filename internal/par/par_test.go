package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 7, 64} {
		if got := Workers(w); got != w {
			t.Fatalf("Workers(%d) = %d", w, got)
		}
	}
}

// TestShardsCoverExactly checks that every (n, workers, grain) split covers
// [0, n) exactly once with monotone bounds and at most `workers` shards.
func TestShardsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 1024} {
		for _, w := range []int{1, 2, 3, 7, 16, 200} {
			for _, grain := range []int{0, 1, 8, 1000} {
				b := shards(n, w, grain)
				if len(b) < 2 || b[0] != 0 || b[len(b)-1] != n {
					t.Fatalf("shards(%d,%d,%d) = %v: bad endpoints", n, w, grain, b)
				}
				if len(b)-1 > w && w >= 1 {
					t.Fatalf("shards(%d,%d,%d): %d shards for %d workers", n, w, grain, len(b)-1, w)
				}
				for i := 1; i < len(b); i++ {
					if b[i] < b[i-1] {
						t.Fatalf("shards(%d,%d,%d) = %v: not monotone", n, w, grain, b)
					}
				}
			}
		}
	}
}

// TestShardsDeterministic: the split depends only on (n, workers, grain).
func TestShardsDeterministic(t *testing.T) {
	a := shards(1027, 7, 3)
	b := shards(1027, 7, 3)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("shards not deterministic: %v vs %v", a, b)
	}
}

// TestForTouchesEachIndexOnce runs For at several worker counts and verifies
// each index is written exactly once (disjointness of shards).
func TestForTouchesEachIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, runtime.GOMAXPROCS(0), 33} {
		for _, n := range []int{0, 1, 5, 100, 1024} {
			counts := make([]int32, n)
			For(w, n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d touched %d times", w, n, i, c)
				}
			}
		}
	}
}

// TestForDeterministicOutput: identical output slice for every worker count
// when each shard owns its output range.
func TestForDeterministicOutput(t *testing.T) {
	const n = 513
	ref := make([]float64, n)
	For(1, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = float64(i)*1.5 + 1
		}
	})
	for _, w := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		out := make([]float64, n)
		For(w, n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i)*1.5 + 1
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", w, i, out[i], ref[i])
			}
		}
	}
}

// TestForGrainSerialFallback: when n ≤ grain the loop must run inline as a
// single shard (observable as exactly one fn invocation).
func TestForGrainSerialFallback(t *testing.T) {
	calls := 0
	For(8, 100, 100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("want single shard [0,100), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestForErrReturnsLowestShardError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, w := range []int{2, 4, 7} {
		err := ForErr(w, 1000, 1, func(lo, hi int) error {
			switch {
			case lo == 0:
				return errLow
			case hi == 1000:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-shard error", w, err)
		}
	}
	if err := ForErr(4, 100, 1, func(lo, hi int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if err := ForErr(4, 0, 1, func(lo, hi int) error { return errLow }); err != nil {
		t.Fatalf("n=0 must not call fn, got %v", err)
	}
}

func TestPoolForMatchesPackageFor(t *testing.T) {
	for _, w := range []int{1, 2, 7, runtime.GOMAXPROCS(0)} {
		p := NewPool(w)
		const n = 777
		out := make([]float64, n)
		ref := make([]float64, n)
		For(w, n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ref[i] = float64(i * i)
			}
		})
		// Many consecutive barriers, as the eigensolver issues them.
		for round := 0; round < 50; round++ {
			p.For(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = float64(i * i)
				}
			})
		}
		p.Close()
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v", w, i, out[i], ref[i])
			}
		}
	}
}

func TestPoolWorkersResolved(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
	p2 := NewPool(5)
	defer p2.Close()
	if p2.Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5", p2.Workers())
	}
}

// TestPoolCloseIdempotent: double Close must not panic.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close()
}

// TestConcurrentPools exercises several pools at once under -race.
func TestConcurrentPools(t *testing.T) {
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			p := NewPool(3)
			defer p.Close()
			sum := make([]int64, 256)
			for r := 0; r < 20; r++ {
				p.For(len(sum), 1, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum[i]++
					}
				})
			}
			for i, v := range sum {
				if v != 20 {
					t.Errorf("sum[%d] = %d, want 20", i, v)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			out := make([]float64, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				For(w, len(out), 64, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						out[j] += 1
					}
				})
			}
		})
	}
}

func BenchmarkPoolBarrier(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := NewPool(w)
			defer p.Close()
			out := make([]float64, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.For(len(out), 64, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						out[j] += 1
					}
				})
			}
		})
	}
}
