package monitor

import (
	"strings"
	"testing"
	"time"

	"streampca/internal/obs"
	"streampca/internal/transport"
)

// TestStatsAndInstrumentation exercises the registry-backed counters behind
// Stats() across the full protocol surface: interval ingestion, sketch
// pulls, and alarm broadcasts.
func TestStatsAndInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	alarmCh := make(chan transport.Alarm, 1)
	cfg := testConfig()
	cfg.Obs = reg
	cfg.SelfCheckEvery = 1 // every interval also runs the oracle validator
	cfg.OnAlarm = func(a transport.Alarm) { alarmCh <- a }
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	local, remote := transport.Pipe()
	recvCh := startReader(remote)
	if err := svc.Attach(local); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	expectFrame(t, recvCh) // hello

	for i := 1; i <= 3; i++ {
		if err := svc.ReportInterval(int64(i), []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		expectFrame(t, recvCh) // volume report
	}

	if err := remote.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: 9}}); err != nil {
		t.Fatal(err)
	}
	if resp := expectFrame(t, recvCh); resp.Response == nil || resp.Response.RequestID != 9 {
		t.Fatalf("expected sketch response, got %+v", resp)
	}

	if err := remote.Send(transport.Envelope{Alarm: &transport.Alarm{Interval: 3, Distance: 5, Threshold: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-alarmCh:
	case <-time.After(2 * time.Second):
		t.Fatal("alarm callback never fired")
	}

	st := svc.Stats()
	if st.Intervals != 3 || st.SketchRequests != 1 || st.AlarmsReceived != 1 ||
		st.ReportErrors != 0 || st.LastInterval != 3 || st.VHBuckets == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// The update-latency histogram saw one sample per interval.
	h := reg.Histogram("streampca_monitor_update_seconds", "", nil)
	if snap := h.Snapshot(); snap.Count != 3 {
		t.Fatalf("update histogram count = %d, want 3", snap.Count)
	}
	// And the whole surface renders as Prometheus text.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"streampca_monitor_update_seconds_bucket",
		"streampca_monitor_intervals_total 3",
		"streampca_monitor_vh_buckets",
		"streampca_transport_messages_total",
		"streampca_monitor_oracle_checks_total",
		"streampca_monitor_oracle_violations_total 0",
		"streampca_monitor_oracle_max_rel_err",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
	// The validator ran on all three intervals and found nothing.
	if got := reg.Counter("streampca_monitor_oracle_checks_total", "").Value(); got == 0 {
		t.Fatal("oracle checks counter never advanced")
	}
}

// TestDiagServerLifecycle checks MetricsAddr spins up /metrics and Close
// tears it down.
func TestDiagServerLifecycle(t *testing.T) {
	cfg := testConfig()
	cfg.MetricsAddr = "127.0.0.1:0"
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := svc.DiagAddr()
	if addr == "" {
		t.Fatal("diagnostics server not started")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the port must be released (no listener left behind).
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := transport.Dial(addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		_ = c.Close()
		if time.Now().After(deadline) {
			t.Fatal("diagnostics server still listening after Close")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
