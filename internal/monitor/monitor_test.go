package monitor

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"streampca/internal/randproj"
	"streampca/internal/transport"
)

// startReader pumps frames from conn into a channel. net.Pipe is
// unbuffered, so every monitor send blocks until the fake NOC reads — a
// persistent reader goroutine must exist before Attach.
func startReader(conn *transport.Conn) <-chan transport.Envelope {
	ch := make(chan transport.Envelope, 64)
	go func() {
		defer close(ch)
		for {
			env, err := conn.Recv()
			if err != nil {
				return
			}
			ch <- env
		}
	}()
	return ch
}

// expectFrame pulls the next frame with a timeout.
func expectFrame(t *testing.T, ch <-chan transport.Envelope) transport.Envelope {
	t.Helper()
	select {
	case env, ok := <-ch:
		if !ok {
			t.Fatal("connection closed while expecting a frame")
		}
		return env
	case <-time.After(2 * time.Second):
		t.Fatal("timed out expecting a frame")
		return transport.Envelope{}
	}
}

func testConfig() Config {
	return Config{
		ID:        "mon-1",
		FlowIDs:   []int{0, 1, 2},
		WindowLen: 16,
		Epsilon:   0.1,
		Sketch:    randproj.Config{Seed: 7, SketchLen: 4},
	}
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig()
	cfg.ID = ""
	if _, err := New(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty id: %v", err)
	}
	cfg = testConfig()
	cfg.Sketch.SketchLen = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("bad sketch config must fail")
	}
	cfg = testConfig()
	cfg.FlowIDs = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("no flows must fail")
	}
	svc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if svc.ID() != "mon-1" {
		t.Fatalf("id = %q", svc.ID())
	}
}

func TestReportIntervalRequiresConnection(t *testing.T) {
	svc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.ReportInterval(1, []float64{1, 2, 3}); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("not connected: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close before connect: %v", err)
	}
}

func TestHandshakeAndVolumeReports(t *testing.T) {
	svc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	local, remote := transport.Pipe()
	recvCh := startReader(remote)
	if err := svc.Attach(local); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	hello := expectFrame(t, recvCh)
	if hello.Hello == nil || hello.Hello.MonitorID != "mon-1" ||
		hello.Hello.SketchLen != 4 || hello.Hello.WindowLen != 16 || hello.Hello.Seed != 7 {
		t.Fatalf("hello = %+v", hello.Hello)
	}

	if err := svc.ReportInterval(1, []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	vol := expectFrame(t, recvCh)
	if vol.Volume == nil || vol.Volume.Interval != 1 || vol.Volume.Volumes[2] != 30 {
		t.Fatalf("volume = %+v", vol.Volume)
	}

	// Double attach rejected.
	if err := svc.Attach(local); !errors.Is(err, ErrAlreadyConnected) {
		t.Fatalf("double attach: %v", err)
	}
}

func TestSketchRequestServed(t *testing.T) {
	svc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	local, remote := transport.Pipe()
	recvCh := startReader(remote)
	if err := svc.Attach(local); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if env := expectFrame(t, recvCh); env.Hello == nil {
		t.Fatalf("expected hello, got %+v", env)
	}

	for i := 1; i <= 20; i++ {
		if err := svc.ReportInterval(int64(i), []float64{float64(i), 5, float64(2 * i)}); err != nil {
			t.Fatal(err)
		}
		if env := expectFrame(t, recvCh); env.Volume == nil {
			t.Fatalf("expected volume report, got %+v", env)
		}
	}

	if err := remote.Send(transport.Envelope{Request: &transport.SketchRequest{RequestID: 77}}); err != nil {
		t.Fatal(err)
	}
	env := expectFrame(t, recvCh)
	resp := env.Response
	if resp == nil || resp.RequestID != 77 || resp.MonitorID != "mon-1" {
		t.Fatalf("response = %+v", resp)
	}
	if err := resp.Report.Validate(4); err != nil {
		t.Fatal(err)
	}
	if resp.Report.Interval != 20 || len(resp.Report.Sketches) != 3 {
		t.Fatalf("report = %+v", resp.Report)
	}
	// Local inspection agrees.
	localRep := svc.Report()
	if localRep.Interval != 20 {
		t.Fatalf("local report interval = %d", localRep.Interval)
	}
}

func TestAlarmCallback(t *testing.T) {
	alarms := make(chan transport.Alarm, 1)
	cfg := testConfig()
	cfg.OnAlarm = func(a transport.Alarm) { alarms <- a }
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, remote := transport.Pipe()
	recvCh := startReader(remote)
	if err := svc.Attach(local); err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if env := expectFrame(t, recvCh); env.Hello == nil { // hello
		t.Fatalf("expected hello, got %+v", env)
	}
	want := transport.Alarm{Interval: 5, Distance: 9, Threshold: 3}
	if err := remote.Send(transport.Envelope{Alarm: &want}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-alarms:
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("alarm = %+v", got)
		}
	case <-time.After(time.Second):
		t.Fatal("alarm callback never fired")
	}
}

func TestProtocolErrorStopsReader(t *testing.T) {
	svc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	local, remote := transport.Pipe()
	recvCh := startReader(remote)
	if err := svc.Attach(local); err != nil {
		t.Fatal(err)
	}
	if env := expectFrame(t, recvCh); env.Hello == nil { // hello
		t.Fatalf("expected hello, got %+v", env)
	}
	if err := remote.Send(transport.Envelope{Error: &transport.ProtocolError{Msg: "rejected"}}); err != nil {
		t.Fatal(err)
	}
	// Close must not hang even though the reader exited on its own.
	done := make(chan struct{})
	go func() {
		_ = svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("close hung after protocol error")
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	svc, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	local, remote := transport.Pipe()
	go func() {
		// Drain the hello so Attach's Send doesn't block on the pipe.
		_, _ = remote.Recv()
	}()
	if err := svc.Attach(local); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		_ = svc.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("close hung")
	}
	// Idempotent.
	if err := svc.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
