// Package monitor implements the long-running local-monitor service of
// Fig. 1: it owns the per-flow sketch state (core.Monitor), pushes one
// volume report to the NOC per interval, and answers the NOC's sketch pulls.
//
// One duplex connection to the NOC carries everything: the monitor sends
// Hello then VolumeReports; the NOC sends SketchRequests, which the monitor
// answers with SketchResponses; Alarms may arrive for operator visibility.
package monitor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streampca/internal/core"
	"streampca/internal/randproj"
	"streampca/internal/transport"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid service configuration.
	ErrConfig = errors.New("monitor: invalid configuration")
	// ErrNotConnected indicates an operation requiring a live NOC link.
	ErrNotConnected = errors.New("monitor: not connected")
	// ErrAlreadyConnected indicates a second Connect/Attach.
	ErrAlreadyConnected = errors.New("monitor: already connected")
)

// Config parameterizes a monitor service.
type Config struct {
	// ID names the monitor (unique per deployment).
	ID string
	// FlowIDs lists the global flows this monitor measures.
	FlowIDs []int
	// WindowLen is n and Epsilon the VH parameter ε.
	WindowLen int
	Epsilon   float64
	// Sketch configures the shared random projection. WindowLen is filled
	// from the service's when unset.
	Sketch randproj.Config
	// OnAlarm, when set, is invoked for alarms pushed by the NOC.
	OnAlarm func(transport.Alarm)
}

// Service is a local monitor. Create with New, wire with Connect (TCP) or
// Attach (an existing connection, e.g. an in-memory pipe), feed with
// ReportInterval, and stop with Close.
type Service struct {
	cfg Config
	gen *randproj.Generator

	mu   sync.Mutex
	core *core.Monitor
	conn *transport.Conn

	readerDone chan struct{}
}

// New validates cfg and builds the sketch state.
func New(cfg Config) (*Service, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("%w: empty monitor id", ErrConfig)
	}
	sketchCfg := cfg.Sketch
	if sketchCfg.WindowLen == 0 {
		sketchCfg.WindowLen = cfg.WindowLen
	}
	gen, err := randproj.NewGenerator(sketchCfg)
	if err != nil {
		return nil, fmt.Errorf("generator: %w", err)
	}
	cm, err := core.NewMonitor(core.MonitorConfig{
		FlowIDs:   cfg.FlowIDs,
		WindowLen: cfg.WindowLen,
		Epsilon:   cfg.Epsilon,
		Gen:       gen,
	})
	if err != nil {
		return nil, fmt.Errorf("core monitor: %w", err)
	}
	return &Service{cfg: cfg, gen: gen, core: cm}, nil
}

// ID returns the monitor's identifier.
func (s *Service) ID() string { return s.cfg.ID }

// Connect dials the NOC, performs the Hello handshake and starts serving
// sketch requests.
func (s *Service) Connect(nocAddr string, timeout time.Duration) error {
	conn, err := transport.Dial(nocAddr, timeout)
	if err != nil {
		return fmt.Errorf("connect NOC: %w", err)
	}
	if err := s.Attach(conn); err != nil {
		_ = conn.Close()
		return err
	}
	return nil
}

// Attach adopts an established connection (used by tests and embedders),
// sends the Hello and starts the reader.
func (s *Service) Attach(conn *transport.Conn) error {
	s.mu.Lock()
	if s.conn != nil {
		s.mu.Unlock()
		return ErrAlreadyConnected
	}
	s.conn = conn
	s.readerDone = make(chan struct{})
	s.mu.Unlock()

	hello := transport.Hello{
		MonitorID: s.cfg.ID,
		FlowIDs:   s.core.FlowIDs(),
		SketchLen: s.gen.SketchLen(),
		WindowLen: s.cfg.WindowLen,
		Seed:      s.gen.Seed(),
	}
	if err := conn.Send(transport.Envelope{Hello: &hello}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	go s.readLoop(conn, s.readerDone)
	return nil
}

// readLoop serves NOC requests until the connection dies.
func (s *Service) readLoop(conn *transport.Conn, done chan struct{}) {
	defer close(done)
	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		switch {
		case env.Request != nil:
			s.mu.Lock()
			rep := s.core.Report()
			s.mu.Unlock()
			resp := transport.SketchResponse{
				RequestID: env.Request.RequestID,
				MonitorID: s.cfg.ID,
				Report:    rep,
			}
			if err := conn.Send(transport.Envelope{Response: &resp}); err != nil {
				return
			}
		case env.Alarm != nil:
			if s.cfg.OnAlarm != nil {
				s.cfg.OnAlarm(*env.Alarm)
			}
		case env.Error != nil:
			// The NOC rejected us; nothing to do but stop.
			return
		default:
			// Ignore unexpected but well-formed frames (forward compat).
		}
	}
}

// ReportInterval ingests interval t's volumes (indexed like Config.FlowIDs)
// into the sketch state and pushes the volume report to the NOC.
func (s *Service) ReportInterval(t int64, volumes []float64) error {
	s.mu.Lock()
	conn := s.conn
	if conn == nil {
		s.mu.Unlock()
		return ErrNotConnected
	}
	if err := s.core.Update(t, volumes); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("sketch update: %w", err)
	}
	flowIDs := s.core.FlowIDs()
	s.mu.Unlock()

	report := transport.VolumeReport{
		MonitorID: s.cfg.ID,
		Interval:  t,
		FlowIDs:   flowIDs,
		Volumes:   append([]float64(nil), volumes...),
	}
	if err := conn.Send(transport.Envelope{Volume: &report}); err != nil {
		return fmt.Errorf("volume report: %w", err)
	}
	return nil
}

// Report returns the current sketch state (local inspection).
func (s *Service) Report() core.SketchReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Report()
}

// Close tears down the NOC connection and waits for the reader to exit.
// Safe to call multiple times and before Connect.
func (s *Service) Close() error {
	s.mu.Lock()
	conn := s.conn
	done := s.readerDone
	s.conn = nil
	s.readerDone = nil
	s.mu.Unlock()
	if conn == nil {
		return nil
	}
	err := conn.Close()
	<-done
	return err
}
