// Package monitor implements the long-running local-monitor service of
// Fig. 1: it owns the per-flow sketch state (core.Monitor), pushes one
// volume report to the NOC per interval, and answers the NOC's sketch pulls.
//
// One duplex connection to the NOC carries everything: the monitor sends
// Hello then VolumeReports; the NOC sends SketchRequests, which the monitor
// answers with SketchResponses; Alarms may arrive for operator visibility.
package monitor

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"streampca/internal/agg"
	"streampca/internal/core"
	"streampca/internal/obs"
	"streampca/internal/oracle"
	"streampca/internal/par"
	"streampca/internal/randproj"
	"streampca/internal/sketch"
	"streampca/internal/trace"
	"streampca/internal/transport"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid service configuration.
	ErrConfig = errors.New("monitor: invalid configuration")
	// ErrNotConnected indicates an operation requiring a live NOC link.
	ErrNotConnected = errors.New("monitor: not connected")
	// ErrAlreadyConnected indicates a second Connect/Attach.
	ErrAlreadyConnected = errors.New("monitor: already connected")
)

// Config parameterizes a monitor service.
type Config struct {
	// ID names the monitor (unique per deployment).
	ID string
	// Family selects the sketcher implementation; the zero value is the
	// paper's random projection.
	Family sketch.Family
	// FlowIDs lists the global flows this monitor measures.
	FlowIDs []int
	// WindowLen is n and Epsilon the VH parameter ε.
	WindowLen int
	Epsilon   float64
	// Sketch configures the shared random projection. WindowLen is filled
	// from the service's when unset. Ignored for the FD family.
	Sketch randproj.Config
	// FDEll is the Frequent Directions basis budget ℓ (FD family only); 0
	// selects sketch.DefaultEll of the assigned flow count.
	FDEll int
	// Workers bounds the goroutines the sketch update shards per-flow work
	// across; 0 selects runtime.GOMAXPROCS(0). Sketch state is identical
	// for any value (see internal/par).
	Workers int
	// OnAlarm, when set, is invoked for alarms pushed by the NOC.
	OnAlarm func(transport.Alarm)
	// Reconnect enables automatic redial when the NOC link drops: the
	// service redials the address given to Connect with capped exponential
	// backoff, resends Hello and resumes serving sketch pulls. Ineffective
	// for Attach-ed connections (there is no address to redial) and after
	// the NOC rejects the registration (retrying would loop forever) —
	// unless an aggregator shard map has been received, in which case the
	// redial walks the rendezvous-ordered candidate list (federated
	// failover; a rejection there is usually a transient re-shard conflict).
	Reconnect bool
	// ReconnectBackoff is the pause before the first redial, doubling up
	// to ReconnectBackoffMax. Defaults: 200ms and 5s.
	ReconnectBackoff    time.Duration
	ReconnectBackoffMax time.Duration
	// Candidates pre-seeds the aggregator candidate list normally learned
	// from a transport.ShardMap push (epoch 0, so any pushed map replaces
	// it). Set by daemons started with an explicit -aggs list so failover
	// works even before the first registration completes.
	Candidates []string
	// SelfCheckEvery, when ≥ 1, enables the internal/oracle differential
	// validator: the service shadows every interval with an exact sliding
	// window per flow and every SelfCheckEvery-th interval checks the
	// histograms' stats, sketches and Lemma 1 bound against it, recording
	// streampca_monitor_oracle_* metrics and logging violations. Costs one
	// exact window of memory per flow plus an O(w·n·l) pass per sampled
	// interval; 0 (the default) disables. The checker reads per-flow
	// variance histograms, so it is randproj-only: setting it with the FD
	// family is a configuration error.
	SelfCheckEvery int
	// Obs is the metrics registry the service instruments into; nil creates
	// a private registry (instrumentation is always on — it is a handful of
	// atomic ops per interval, see BenchmarkInstrumentedSketchUpdate).
	Obs *obs.Registry
	// Log receives structured logs; nil discards them.
	Log *slog.Logger
	// MetricsAddr, when non-empty, serves /metrics, /healthz and
	// /debug/pprof on that address for this monitor's registry. The server
	// lives until Close. Empty (the default) opens no listener. With Trace
	// set it also serves the span ring on /debug/trace.
	MetricsAddr string
	// Trace, when non-nil, emits interval-lineage spans: one
	// "monitor.update" per ReportInterval (trace.ForInterval(t)) and one
	// "monitor.sketch_report" per served sketch pull, parented under the
	// NOC's fetch span via the envelope TraceContext. Nil (the default)
	// costs one pointer check per call site.
	Trace *trace.Tracer
	// FlightRecorder, when non-nil, appends one JSONL record per alarm
	// broadcast received from the NOC — the monitor-side half of the alarm
	// audit trail. Nil disables.
	FlightRecorder *trace.FlightRecorder
}

// metrics is the monitor's instrumentation surface. All names are under
// streampca_monitor_ and documented in README.md "Observability".
type metrics struct {
	// updateSeconds times the O(w·log n) per-interval sketch update.
	updateSeconds *obs.Histogram
	intervals     *obs.Counter
	reportErrors  *obs.Counter
	sketchReqs    *obs.Counter
	alarmsRecv    *obs.Counter
	// vhBuckets tracks the O(w·log² n) variance-histogram state size.
	vhBuckets    *obs.Gauge
	lastInterval *obs.Gauge
	// workers exposes the resolved parallelism of the sketch-update path.
	workers *obs.Gauge
	// reconnects counts successful automatic redials of the NOC link.
	reconnects *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		updateSeconds: reg.Histogram("streampca_monitor_update_seconds",
			"Per-interval sketch-update latency (the paper's O(w log n) step).", nil),
		intervals: reg.Counter("streampca_monitor_intervals_total",
			"Intervals ingested via ReportInterval."),
		reportErrors: reg.Counter("streampca_monitor_report_errors_total",
			"Sketch updates or volume-report sends that failed."),
		sketchReqs: reg.Counter("streampca_monitor_sketch_requests_total",
			"Sketch pulls served to the NOC (§IV-C lazy protocol)."),
		alarmsRecv: reg.Counter("streampca_monitor_alarms_received_total",
			"Alarm broadcasts received from the NOC."),
		vhBuckets: reg.Gauge("streampca_monitor_vh_buckets",
			"Sketch state cells: variance-histogram buckets summed over assigned flows (randproj, O(w log^2 n) space) or live FD buffer rows (≤ 2ℓ)."),
		lastInterval: reg.Gauge("streampca_monitor_last_interval",
			"Most recent interval folded into the sketch state."),
		workers: reg.Gauge("streampca_monitor_workers",
			"Resolved worker count for the sharded sketch-update path."),
		reconnects: reg.Counter("streampca_monitor_reconnects_total",
			"Successful automatic redials after the NOC link dropped."),
	}
}

// Service is a local monitor. Create with New, wire with Connect (TCP) or
// Attach (an existing connection, e.g. an in-memory pipe), feed with
// ReportInterval, and stop with Close.
type Service struct {
	cfg Config
	gen *randproj.Generator
	log *slog.Logger

	reg     *obs.Registry
	health  *obs.Health
	met     *metrics
	wireMet *transport.Metrics
	diag    *obs.Server

	mu     sync.Mutex
	core   *core.Monitor
	oracle *oracle.Checker
	conn   *transport.Conn
	// nocAddr/dialTimeout remember the Connect parameters so the
	// reconnect loop can redial; closed stops it permanently.
	nocAddr     string
	dialTimeout time.Duration
	closed      bool
	// candidates is the aggregator shard map (transport.ShardMap) most
	// recently pushed on the link, kept at the highest epoch seen. When
	// non-empty, the reconnect loop dials the rendezvous order over it
	// instead of pinning to the last address — the federated failover path.
	candidates     []string
	candidateEpoch uint64
	// ingestStats, when set, snapshots the live-ingest pipeline feeding
	// this monitor for Stats/LogSummary (see SetIngestStats).
	ingestStats func() IngestStats

	readerDone chan struct{}
}

// New validates cfg and builds the sketch state.
func New(cfg Config) (*Service, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("%w: empty monitor id", ErrConfig)
	}
	var gen *randproj.Generator
	if cfg.Family == sketch.FamilyRandProj {
		sketchCfg := cfg.Sketch
		if sketchCfg.WindowLen == 0 {
			sketchCfg.WindowLen = cfg.WindowLen
		}
		var err error
		if gen, err = randproj.NewGenerator(sketchCfg); err != nil {
			return nil, fmt.Errorf("generator: %w", err)
		}
	} else if cfg.SelfCheckEvery > 0 {
		return nil, fmt.Errorf("%w: the oracle self-check shadows variance histograms and only supports the randproj family", ErrConfig)
	}
	cm, err := core.NewMonitor(core.MonitorConfig{
		Family:    cfg.Family,
		FlowIDs:   cfg.FlowIDs,
		WindowLen: cfg.WindowLen,
		Epsilon:   cfg.Epsilon,
		Gen:       gen,
		FDEll:     cfg.FDEll,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core monitor: %w", err)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	s := &Service{
		cfg:     cfg,
		gen:     gen,
		log:     log.With("monitor", cfg.ID),
		reg:     reg,
		health:  obs.NewHealth(),
		met:     newMetrics(reg),
		wireMet: transport.NewMetrics(reg),
		core:    cm,
	}
	s.candidates = append([]string(nil), cfg.Candidates...)
	if cfg.SelfCheckEvery > 0 {
		chk, err := oracle.NewChecker(oracle.CheckerConfig{
			Every:     cfg.SelfCheckEvery,
			WindowLen: cfg.WindowLen,
			Epsilon:   cfg.Epsilon,
			Gen:       gen,
			NumFlows:  len(cfg.FlowIDs),
			Component: "monitor",
			Log:       s.log,
			Reg:       reg,
		})
		if err != nil {
			return nil, fmt.Errorf("oracle checker: %w", err)
		}
		s.oracle = chk
	}
	s.met.workers.Set(float64(par.Workers(cfg.Workers)))
	s.health.Set("monitor", obs.StatusOK, "sketch state ready")
	s.health.Set("noc-link", obs.StatusDegraded, "not connected")
	if cfg.MetricsAddr != "" {
		diag, err := obs.StartServerWith(cfg.MetricsAddr, reg, s.health, cfg.Trace.Recorder(), s.log)
		if err != nil {
			return nil, err
		}
		s.diag = diag
	}
	return s, nil
}

// sketchParam returns the family's shared sketch parameter announced in the
// Hello: l from the generator for randproj, the resolved ℓ for FD.
func (s *Service) sketchParam() int {
	if s.gen != nil {
		return s.gen.SketchLen()
	}
	if fd, ok := s.core.Sketcher().(*sketch.FD); ok {
		return fd.Ell()
	}
	return 0
}

// Registry exposes the metrics registry (shared when Config.Obs was set).
func (s *Service) Registry() *obs.Registry { return s.reg }

// Health exposes the component health tracker backing /healthz.
func (s *Service) Health() *obs.Health { return s.health }

// DiagAddr returns the diagnostics server address, or "" when disabled.
func (s *Service) DiagAddr() string {
	if s.diag == nil {
		return ""
	}
	return s.diag.Addr()
}

// ID returns the monitor's identifier.
func (s *Service) ID() string { return s.cfg.ID }

// Connect dials the NOC, performs the Hello handshake and starts serving
// sketch requests. With Config.Reconnect set, a later link loss redials
// this address automatically.
func (s *Service) Connect(nocAddr string, timeout time.Duration) error {
	s.mu.Lock()
	s.nocAddr = nocAddr
	s.dialTimeout = timeout
	s.mu.Unlock()
	conn, err := transport.DialWithMetrics(nocAddr, timeout, s.wireMet)
	if err != nil {
		s.health.Set("noc-link", obs.StatusDown, err.Error())
		return fmt.Errorf("connect NOC: %w", err)
	}
	if err := s.Attach(conn); err != nil {
		_ = conn.Close()
		return err
	}
	return nil
}

// Attach adopts an established connection (used by tests and embedders),
// sends the Hello and starts the reader.
func (s *Service) Attach(conn *transport.Conn) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%w: service closed", ErrNotConnected)
	}
	if s.conn != nil {
		s.mu.Unlock()
		return ErrAlreadyConnected
	}
	s.conn = conn
	s.readerDone = make(chan struct{})
	s.mu.Unlock()

	hello := transport.Hello{
		MonitorID: s.cfg.ID,
		FlowIDs:   s.core.FlowIDs(),
		SketchLen: s.sketchParam(),
		WindowLen: s.cfg.WindowLen,
		Family:    s.cfg.Family,
	}
	if s.gen != nil {
		hello.Seed = s.gen.Seed()
	}
	if err := conn.Send(transport.Envelope{Hello: &hello}); err != nil {
		s.health.Set("noc-link", obs.StatusDown, err.Error())
		return fmt.Errorf("hello: %w", err)
	}
	s.health.Set("noc-link", obs.StatusOK, "registered with NOC")
	s.log.Info("attached to NOC", "flows", len(hello.FlowIDs), "window", hello.WindowLen, "sketch", hello.SketchLen)
	go s.readLoop(conn, s.readerDone)
	return nil
}

// readLoop serves NOC requests until the connection dies, then hands off
// to the reconnect loop when enabled.
func (s *Service) readLoop(conn *transport.Conn, done chan struct{}) {
	defer close(done)
	rejected := false
loop:
	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		switch {
		case env.Request != nil:
			s.met.sketchReqs.Inc()
			// Parent the serving span under the NOC's fetch span when the
			// request carries a trace context (cross-process lineage).
			var sp *trace.Span
			if tc := env.Trace; tc != nil {
				sp = s.cfg.Trace.Start(trace.ID(tc.TraceID), trace.SpanID(tc.SpanID),
					"monitor.sketch_report", trace.I("request", int64(env.Request.RequestID)))
			}
			s.mu.Lock()
			rep := s.core.Report()
			s.mu.Unlock()
			sp.SetAttr(trace.I("sketch_interval", rep.Interval), trace.I("flows", int64(len(rep.FlowIDs))))
			resp := transport.SketchResponse{
				RequestID: env.Request.RequestID,
				MonitorID: s.cfg.ID,
				Report:    rep,
			}
			err := conn.Send(transport.Envelope{Response: &resp, Trace: env.Trace})
			if err != nil {
				sp.Event("send_error", trace.S("err", err.Error()))
			}
			sp.End()
			if err != nil {
				break loop
			}
		case env.Alarm != nil:
			s.met.alarmsRecv.Inc()
			s.log.Warn("alarm from NOC", "interval", env.Alarm.Interval,
				"distance", env.Alarm.Distance, "threshold", env.Alarm.Threshold,
				"degraded", env.Alarm.Degraded)
			if fr := s.cfg.FlightRecorder; fr != nil {
				s.mu.Lock()
				last := s.core.Now()
				s.mu.Unlock()
				if err := fr.Record(alarmRecord{
					Kind:         "monitor.alarm_received",
					Monitor:      s.cfg.ID,
					Trace:        trace.ForInterval(env.Alarm.Interval),
					Interval:     env.Alarm.Interval,
					SPE:          env.Alarm.Distance,
					Threshold:    env.Alarm.Threshold,
					Degraded:     env.Alarm.Degraded,
					LastInterval: last,
					UnixNanos:    time.Now().UnixNano(),
				}); err != nil {
					s.log.Warn("flight record failed", "err", err)
				}
			}
			if s.cfg.OnAlarm != nil {
				s.cfg.OnAlarm(*env.Alarm)
			}
		case env.Shards != nil:
			// An aggregator announced the candidate list fronting the NOC;
			// keep the highest epoch for rendezvous failover.
			s.mu.Lock()
			if len(env.Shards.Aggregators) > 0 && env.Shards.Epoch >= s.candidateEpoch {
				s.candidateEpoch = env.Shards.Epoch
				s.candidates = append([]string(nil), env.Shards.Aggregators...)
			}
			n, epoch := len(s.candidates), s.candidateEpoch
			s.mu.Unlock()
			s.log.Info("shard map received", "aggregators", n, "epoch", epoch)
		case env.Error != nil:
			// The upstream rejected us. With no alternatives, reconnecting
			// would only loop; with a shard map, the rejection is usually a
			// transient re-shard conflict and failover should keep trying.
			rejected = true
			s.health.Set("noc-link", obs.StatusDown, env.Error.Msg)
			s.log.Error("NOC rejected connection", "err", env.Error.Msg)
			break loop
		default:
			// Ignore unexpected but well-formed frames (forward compat).
		}
	}

	// Release this connection if it is still the current one; Close may
	// already have swapped it out (then there is nothing to do).
	s.mu.Lock()
	current := s.conn == conn && !s.closed
	if current {
		s.conn = nil
	}
	addr := s.nocAddr
	s.mu.Unlock()
	if !current {
		return
	}
	_ = conn.Close()
	s.mu.Lock()
	nCandidates := len(s.candidates)
	s.mu.Unlock()
	if s.cfg.Reconnect && addr != "" && (!rejected || nCandidates > 1) {
		s.health.Set("noc-link", obs.StatusDegraded, "link lost; reconnecting")
		s.log.Warn("NOC link lost, reconnecting", "addr", addr, "candidates", nCandidates)
		go s.reconnectLoop(addr)
		return
	}
	if !rejected {
		s.health.Set("noc-link", obs.StatusDown, "link lost")
		s.log.Warn("NOC link lost")
	}
}

// reconnectLoop redials the upstream with capped exponential backoff until
// it succeeds, the service is closed, or another connection appears. With an
// aggregator shard map on file the loop walks the rendezvous order for this
// monitor's ID each round (falling back to the last good address when it is
// not in the map), so the death of one aggregator re-places this monitor
// onto the surviving candidate every other monitor independently agrees on.
func (s *Service) reconnectLoop(fallback string) {
	backoff := s.cfg.ReconnectBackoff
	if backoff <= 0 {
		backoff = 200 * time.Millisecond
	}
	max := s.cfg.ReconnectBackoffMax
	if max <= 0 {
		max = 5 * time.Second
	}
	for attempt := 1; ; attempt++ {
		s.mu.Lock()
		stop := s.closed || s.conn != nil
		timeout := s.dialTimeout
		cands := append([]string(nil), s.candidates...)
		s.mu.Unlock()
		if stop {
			return
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > max {
			backoff = max
		}
		order := []string{fallback}
		if len(cands) > 0 {
			order = agg.Rendezvous(s.cfg.ID, cands)
			inMap := false
			for _, a := range order {
				if a == fallback {
					inMap = true
					break
				}
			}
			if fallback != "" && !inMap {
				order = append(order, fallback)
			}
		}
		for _, addr := range order {
			err := s.Connect(addr, timeout)
			if err == nil {
				s.met.reconnects.Inc()
				s.log.Info("reconnected upstream", "addr", addr, "attempts", attempt)
				return
			}
			if errors.Is(err, ErrAlreadyConnected) || errors.Is(err, ErrNotConnected) {
				return // someone else attached, or the service closed
			}
			s.log.Warn("reconnect attempt failed", "attempt", attempt, "addr", addr, "err", err)
		}
	}
}

// ReportInterval ingests interval t's volumes (indexed like Config.FlowIDs)
// into the sketch state and pushes the volume report to the NOC. An
// interval already folded into the sketch state — a retry after a failed
// send — skips the update and only re-sends the report, so the call is
// safe to repeat across link losses and reconnects.
func (s *Service) ReportInterval(t int64, volumes []float64) error {
	sp := s.cfg.Trace.Start(trace.ForInterval(t), 0, "monitor.update",
		trace.S("monitor", s.cfg.ID),
		trace.I("interval", t),
		trace.I("flows", int64(len(volumes))))
	s.mu.Lock()
	conn := s.conn
	if conn == nil {
		s.mu.Unlock()
		sp.Event("not_connected")
		sp.End()
		return ErrNotConnected
	}
	if t > s.core.Now() {
		start := time.Now()
		if err := s.core.Update(t, volumes); err != nil {
			s.mu.Unlock()
			s.met.reportErrors.Inc()
			sp.Event("update_error", trace.S("err", err.Error()))
			sp.End()
			return fmt.Errorf("sketch update: %w", err)
		}
		s.met.updateSeconds.Observe(time.Since(start).Seconds())
		s.met.vhBuckets.Set(float64(s.core.NumBucketsTotal()))
		s.met.intervals.Inc()
		s.met.lastInterval.Set(float64(t))
		sp.Event("sketch_updated", trace.I("vh_buckets", int64(s.core.NumBucketsTotal())))
		if s.oracle != nil {
			// Shadow only intervals actually folded into the sketch state
			// (retries re-enter with t ≤ Now and must not double-push).
			s.oracle.ObserveMonitor(t, volumes, s.core)
		}
	} else {
		sp.Event("update_skipped", trace.I("now", s.core.Now()))
	}
	flowIDs := s.core.FlowIDs()
	s.mu.Unlock()

	report := transport.VolumeReport{
		MonitorID: s.cfg.ID,
		Interval:  t,
		FlowIDs:   flowIDs,
		Volumes:   append([]float64(nil), volumes...),
	}
	env := transport.Envelope{Volume: &report}
	if sp != nil {
		env.Trace = &transport.TraceContext{TraceID: uint64(sp.Trace()), SpanID: uint64(sp.ID())}
	}
	if err := conn.Send(env); err != nil {
		s.met.reportErrors.Inc()
		s.health.Set("noc-link", obs.StatusDown, err.Error())
		sp.Event("report_send_error", trace.S("err", err.Error()))
		sp.End()
		return fmt.Errorf("volume report: %w", err)
	}
	sp.Event("volume_report_sent")
	sp.End()
	return nil
}

// alarmRecord is the monitor-side flight-recorder line: one per alarm
// broadcast received from the NOC, keyed by the same interval-derived trace
// ID the NOC's decision record carries.
type alarmRecord struct {
	Kind         string   `json:"kind"`
	Monitor      string   `json:"monitor"`
	Trace        trace.ID `json:"trace"`
	Interval     int64    `json:"interval"`
	SPE          float64  `json:"spe"`
	Threshold    float64  `json:"threshold"`
	Degraded     bool     `json:"degraded"`
	LastInterval int64    `json:"last_interval"`
	UnixNanos    int64    `json:"unix_ns"`
}

// IngestStats is a snapshot of the live-ingestion pipeline feeding this
// monitor, surfaced in Stats and the LogSummary line so drops are visible
// without scraping /metrics. The daemon wires it with SetIngestStats; a
// CSV- or test-fed monitor has none.
type IngestStats struct {
	// QueueDepth is the current shard-queue backlog in batches.
	QueueDepth int64
	// DroppedRecords counts records shed by backpressure (both the
	// drop-oldest and drop-newest policies), FutureDrops the clock-anomaly
	// rejections and LateRecords the arrivals behind the seal watermark.
	DroppedRecords int64
	FutureDrops    int64
	LateRecords    int64
	// EpochsSealed and PartialEpochs count delivered intervals and the
	// subset sealed early by shutdown drain.
	EpochsSealed  int64
	PartialEpochs int64
}

// SetIngestStats installs the callback LogSummary/Stats use to snapshot the
// ingest pipeline (nil detaches). The monitor never depends on
// internal/ingest directly; the daemon that owns both wires them together.
func (s *Service) SetIngestStats(fn func() IngestStats) {
	s.mu.Lock()
	s.ingestStats = fn
	s.mu.Unlock()
}

// Stats is the monitor's counterpart to the NOC's DetectorStats: a snapshot
// of the per-daemon counters for periodic one-line summaries.
type Stats struct {
	// Intervals is the number of intervals ingested, SketchRequests the
	// sketch pulls served, AlarmsReceived the NOC broadcasts seen and
	// ReportErrors the failed updates/sends.
	Intervals      int64
	SketchRequests int64
	AlarmsReceived int64
	ReportErrors   int64
	// LastInterval is the newest interval in the sketch state and VHBuckets
	// its current total bucket count.
	LastInterval int64
	VHBuckets    int
	// Ingest is the live-ingestion snapshot; nil when the monitor is not
	// fed by an ingest pipeline (see SetIngestStats).
	Ingest *IngestStats
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	last := s.core.Now()
	buckets := s.core.NumBucketsTotal()
	ingestFn := s.ingestStats
	s.mu.Unlock()
	st := Stats{
		Intervals:      s.met.intervals.Value(),
		SketchRequests: s.met.sketchReqs.Value(),
		AlarmsReceived: s.met.alarmsRecv.Value(),
		ReportErrors:   s.met.reportErrors.Value(),
		LastInterval:   last,
		VHBuckets:      buckets,
	}
	if ingestFn != nil {
		in := ingestFn()
		st.Ingest = &in
	}
	return st
}

// LogSummary emits the one-line slog summary daemons print periodically.
// With an ingest pipeline attached (SetIngestStats) the line also covers
// the ingest side, so backpressure drops and partial epochs show up in the
// same place as sketch-side stats.
func (s *Service) LogSummary() {
	st := s.Stats()
	args := []any{
		"intervals", st.Intervals,
		"sketch_requests", st.SketchRequests,
		"alarms", st.AlarmsReceived,
		"report_errors", st.ReportErrors,
		"last_interval", st.LastInterval,
		"vh_buckets", st.VHBuckets,
	}
	if st.Ingest != nil {
		args = append(args,
			"ingest_queue_depth", st.Ingest.QueueDepth,
			"ingest_dropped", st.Ingest.DroppedRecords,
			"ingest_future_drops", st.Ingest.FutureDrops,
			"ingest_late", st.Ingest.LateRecords,
			"ingest_sealed", st.Ingest.EpochsSealed,
			"ingest_partial", st.Ingest.PartialEpochs,
		)
	}
	s.log.Info("monitor stats", args...)
}

// Report returns the current sketch state (local inspection).
func (s *Service) Report() core.SketchReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.core.Report()
}

// Close tears down the NOC connection, stops any reconnect loop and waits
// for the reader to exit. Safe to call multiple times and before Connect;
// the service cannot be re-attached afterwards.
func (s *Service) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	done := s.readerDone
	s.conn = nil
	s.readerDone = nil
	s.mu.Unlock()
	if s.diag != nil {
		_ = s.diag.Close()
	}
	s.health.Set("monitor", obs.StatusDown, "closed")
	s.health.Set("noc-link", obs.StatusDown, "closed")
	var err error
	if conn != nil {
		err = conn.Close()
	}
	if done != nil {
		<-done
		s.LogSummary()
	}
	return err
}
