package ewma

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streampca/internal/pca"
	"streampca/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{name: "valid", cfg: Config{NumFlows: 3, Lambda: 0.1, K: 3}, ok: true},
		{name: "no flows", cfg: Config{Lambda: 0.1, K: 3}},
		{name: "lambda 0", cfg: Config{NumFlows: 3, K: 3}},
		{name: "lambda > 1", cfg: Config{NumFlows: 3, Lambda: 1.5, K: 3}},
		{name: "k 0", cfg: Config{NumFlows: 3, Lambda: 0.1}},
		{name: "negative warmup", cfg: Config{NumFlows: 3, Lambda: 0.1, K: 3, Warmup: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestObserveValidation(t *testing.T) {
	d, err := New(Config{NumFlows: 2, Lambda: 0.1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Observe([]float64{1}); !errors.Is(err, ErrInput) {
		t.Fatalf("short: %v", err)
	}
	if _, err := d.Observe([]float64{1, math.NaN()}); !errors.Is(err, ErrInput) {
		t.Fatalf("NaN: %v", err)
	}
	if _, err := d.Mean(5); !errors.Is(err, ErrInput) {
		t.Fatalf("mean index: %v", err)
	}
	if _, err := d.StdDev(-1); !errors.Is(err, ErrInput) {
		t.Fatalf("stddev index: %v", err)
	}
}

func TestTracksStationaryProcess(t *testing.T) {
	d, err := New(Config{NumFlows: 1, Lambda: 0.1, K: 3, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var alarms, ready int
	for i := 0; i < 3000; i++ {
		res, err := d.Observe([]float64{100 + 5*rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ready {
			ready++
			if res.Anomalous {
				alarms++
			}
		}
	}
	mean, _ := d.Mean(0)
	sd, _ := d.StdDev(0)
	if math.Abs(mean-100) > 3 {
		t.Fatalf("mean = %v", mean)
	}
	if sd < 2 || sd > 10 {
		t.Fatalf("sd = %v", sd)
	}
	if rate := float64(alarms) / float64(ready); rate > 0.02 {
		t.Fatalf("false-alarm rate = %v", rate)
	}
	if d.Seen() != 3000 {
		t.Fatalf("seen = %d", d.Seen())
	}
}

func TestDetectsHighProfileSpike(t *testing.T) {
	d, err := New(Config{NumFlows: 4, Lambda: 0.1, K: 4, Warmup: 50})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	row := func() []float64 {
		out := make([]float64, 4)
		for j := range out {
			out[j] = 1000 + 20*rng.NormFloat64()
		}
		return out
	}
	for i := 0; i < 500; i++ {
		if _, err := d.Observe(row()); err != nil {
			t.Fatal(err)
		}
	}
	spiked := row()
	spiked[2] += 5000
	res, err := d.Observe(spiked)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Anomalous || len(res.Flagged) != 1 || res.Flagged[0] != 2 {
		t.Fatalf("spike result = %+v", res)
	}
}

// The motivating comparison (paper §I): a coordinated low-profile anomaly —
// each flow shifted by well under its own noise band — is invisible to the
// per-flow EWMA detector but caught by the subspace method.
func TestMissesCoordinatedLowProfileThatPCACatches(t *testing.T) {
	tr, err := traffic.Generate(traffic.GeneratorConfig{
		Routers:         []string{"A", "B", "C", "D", "E"},
		NumIntervals:    700,
		IntervalsPerDay: 96,
		Seed:            12,
		LocalNoiseLevel: 0.08, // per-flow noise dominates a 15% shift
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := []int{1, 7, 13, 19, 21, 23}
	start, end := 600, 606
	if err := tr.InjectCoordinated(flows, start, end, 0.15); err != nil {
		t.Fatal(err)
	}

	ew, err := New(Config{NumFlows: tr.NumFlows(), Lambda: 0.1, K: 3.5, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := pca.NewSlidingDetector(pca.SlidingConfig{
		WindowLen: 400, NumFlows: tr.NumFlows(), Rank: 6, Alpha: 0.01, RefitEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}

	var ewmaHits, pcaHits int
	for i := 0; i < tr.NumIntervals(); i++ {
		row := tr.Volumes.Row(i)
		eres, err := ew.Observe(row)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := sub.Observe(row)
		if err != nil {
			t.Fatal(err)
		}
		if i >= start && i < end {
			if eres.Ready && eres.Anomalous {
				ewmaHits++
			}
			if pres.Ready && pres.Anomalous {
				pcaHits++
			}
		}
	}
	if pcaHits == 0 {
		t.Fatal("subspace method must catch the coordinated anomaly")
	}
	if ewmaHits >= pcaHits {
		t.Fatalf("EWMA (%d hits) should underperform PCA (%d hits) on coordinated low-profile anomalies",
			ewmaHits, pcaHits)
	}
}

// Property: the tracker is shift-equivariant — shifting all observations by
// a constant shifts means and leaves flags unchanged.
func TestQuickShiftEquivariance(t *testing.T) {
	f := func(seed int64, shiftRaw uint16) bool {
		shift := float64(shiftRaw)
		mk := func() *Detector {
			d, err := New(Config{NumFlows: 1, Lambda: 0.2, K: 3, Warmup: 10})
			if err != nil {
				return nil
			}
			return d
		}
		a, b := mk(), mk()
		if a == nil || b == nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			x := 50 + 10*r.NormFloat64()
			ra, errA := a.Observe([]float64{x})
			rb, errB := b.Observe([]float64{x + shift})
			if errA != nil || errB != nil {
				return false
			}
			if ra.Anomalous != rb.Anomalous {
				return false
			}
		}
		ma, _ := a.Mean(0)
		mb, _ := b.Mean(0)
		return math.Abs((mb-ma)-shift) < 1e-6*math.Max(1, shift)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
