// Package ewma implements a classical per-flow volume anomaly detector —
// exponentially weighted moving average with k·σ control bands — as the
// single-link baseline the paper's introduction argues against: it catches
// high-profile volume anomalies on individual flows but is structurally
// blind to coordinated low-profile anomalies, whose per-flow deviations stay
// inside each flow's own band. The ablation benchmarks and the botnet
// example contrast it with the subspace methods.
package ewma

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the package.
var (
	// ErrConfig indicates an invalid detector configuration.
	ErrConfig = errors.New("ewma: invalid configuration")
	// ErrInput indicates structurally invalid input.
	ErrInput = errors.New("ewma: invalid input")
)

// Config parameterizes a Detector.
type Config struct {
	// NumFlows is the number of per-flow trackers.
	NumFlows int
	// Lambda is the smoothing factor in (0, 1]; typical 0.05–0.3.
	Lambda float64
	// K is the control-band width in standard deviations; typical 3.
	K float64
	// Warmup is the number of intervals used purely for estimation before
	// any flagging; defaults to 32.
	Warmup int
}

// Detector tracks one EWMA mean and variance per flow.
type Detector struct {
	cfg   Config
	mean  []float64
	vari  []float64
	seen  int
	ready bool
}

// New validates cfg and returns an empty detector.
func New(cfg Config) (*Detector, error) {
	if cfg.NumFlows < 1 {
		return nil, fmt.Errorf("%w: %d flows", ErrConfig, cfg.NumFlows)
	}
	if math.IsNaN(cfg.Lambda) || cfg.Lambda <= 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("%w: lambda %v", ErrConfig, cfg.Lambda)
	}
	if math.IsNaN(cfg.K) || cfg.K <= 0 {
		return nil, fmt.Errorf("%w: k %v", ErrConfig, cfg.K)
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 32
	}
	if cfg.Warmup < 1 {
		return nil, fmt.Errorf("%w: warmup %d", ErrConfig, cfg.Warmup)
	}
	return &Detector{
		cfg:  cfg,
		mean: make([]float64, cfg.NumFlows),
		vari: make([]float64, cfg.NumFlows),
	}, nil
}

// Result reports one observation's outcome.
type Result struct {
	// Ready is false during warm-up.
	Ready bool
	// Anomalous is true when at least one flow left its control band.
	Anomalous bool
	// Flagged lists the flows outside their bands (nil when none).
	Flagged []int
	// MaxZ is the largest per-flow |deviation|/σ observed.
	MaxZ float64
}

// Observe updates the trackers with one interval's volumes and reports
// which flows (if any) left their control bands. The current observation is
// flagged against the bands BEFORE it is absorbed.
func (d *Detector) Observe(volumes []float64) (Result, error) {
	if len(volumes) != d.cfg.NumFlows {
		return Result{}, fmt.Errorf("%w: %d volumes for %d flows", ErrInput, len(volumes), d.cfg.NumFlows)
	}
	for j, v := range volumes {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Result{}, fmt.Errorf("%w: non-finite volume for flow %d", ErrInput, j)
		}
	}

	var res Result
	if d.seen == 0 {
		copy(d.mean, volumes)
		d.seen++
		return res, nil
	}

	lam := d.cfg.Lambda
	ready := d.seen >= d.cfg.Warmup
	res.Ready = ready
	for j, v := range volumes {
		dev := v - d.mean[j]
		sigma := math.Sqrt(d.vari[j])
		if ready && sigma > 0 {
			z := math.Abs(dev) / sigma
			if z > res.MaxZ {
				res.MaxZ = z
			}
			if z > d.cfg.K {
				res.Flagged = append(res.Flagged, j)
			}
		}
		// Standard EWMA mean/variance recursion (Roberts; MacGregor).
		d.mean[j] += lam * dev
		d.vari[j] = (1 - lam) * (d.vari[j] + lam*dev*dev)
	}
	d.seen++
	res.Anomalous = len(res.Flagged) > 0
	return res, nil
}

// Mean returns the current EWMA mean of flow j.
func (d *Detector) Mean(j int) (float64, error) {
	if j < 0 || j >= d.cfg.NumFlows {
		return 0, fmt.Errorf("%w: flow %d of %d", ErrInput, j, d.cfg.NumFlows)
	}
	return d.mean[j], nil
}

// StdDev returns the current EWMA standard deviation of flow j.
func (d *Detector) StdDev(j int) (float64, error) {
	if j < 0 || j >= d.cfg.NumFlows {
		return 0, fmt.Errorf("%w: flow %d of %d", ErrInput, j, d.cfg.NumFlows)
	}
	return math.Sqrt(d.vari[j]), nil
}

// Seen returns the number of observations absorbed.
func (d *Detector) Seen() int { return d.seen }
