package traffic

import (
	"streampca/internal/flow"
	"streampca/internal/mat"
)

// symEigenForTest returns the eigenvalues of a symmetric matrix, keeping the
// traffic tests decoupled from the eigensolver's full API.
func symEigenForTest(g *mat.Matrix) ([]float64, error) {
	eig, err := mat.SymEigen(g)
	if err != nil {
		return nil, err
	}
	return eig.Values, nil
}

// newAggForTest builds a plain aggregator without router names.
func newAggForTest(tbl *flow.Table, routers int) (*flow.Aggregator, error) {
	return flow.NewAggregator(tbl, routers, nil)
}
