package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrLRDConfig indicates invalid long-range-dependence parameters.
var ErrLRDConfig = errors.New("traffic: invalid LRD configuration")

// FGN generates n samples of fractional Gaussian noise with Hurst parameter
// H ∈ (0, 1) and unit marginal variance, using the Hosking (Durbin–Levinson)
// method. The method is exact but O(n²); use it for validation and
// moderate-length series, and MultiScaleNoise for long generator runs.
func FGN(n int, hurst float64, rng *rand.Rand) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n = %d", ErrLRDConfig, n)
	}
	if math.IsNaN(hurst) || hurst <= 0 || hurst >= 1 {
		return nil, fmt.Errorf("%w: hurst = %v", ErrLRDConfig, hurst)
	}
	if n == 0 {
		return nil, nil
	}

	// Autocovariance of fGn: γ(k) = ½(|k+1|^{2H} − 2|k|^{2H} + |k−1|^{2H}).
	gamma := make([]float64, n)
	twoH := 2 * hurst
	for k := 0; k < n; k++ {
		fk := float64(k)
		gamma[k] = 0.5 * (math.Pow(fk+1, twoH) - 2*math.Pow(fk, twoH) + math.Pow(math.Abs(fk-1), twoH))
	}

	out := make([]float64, n)
	phi := make([]float64, n)
	prevPhi := make([]float64, n)
	v := gamma[0]
	out[0] = rng.NormFloat64() * math.Sqrt(v)

	for i := 1; i < n; i++ {
		// Durbin–Levinson step: new reflection coefficient.
		var acc float64
		for j := 1; j < i; j++ {
			acc += prevPhi[j] * gamma[i-j]
		}
		phiII := (gamma[i] - acc) / v
		phi[i] = phiII
		for j := 1; j < i; j++ {
			phi[j] = prevPhi[j] - phiII*prevPhi[i-j]
		}
		v *= 1 - phiII*phiII
		if v < 0 {
			v = 0
		}

		var mean float64
		for j := 1; j <= i; j++ {
			mean += phi[j] * out[i-j]
		}
		out[i] = mean + rng.NormFloat64()*math.Sqrt(v)
		copy(prevPhi[:i+1], phi[:i+1])
	}
	return out, nil
}

// MultiScaleNoise approximates long-range-dependent noise as a weighted sum
// of AR(1) (Ornstein–Uhlenbeck-like) components with geometrically spread
// time constants. The superposition reproduces slowly decaying correlations
// over the covered range of scales at O(components) per sample, making it
// suitable for month-long trace generation.
type MultiScaleNoise struct {
	state   []float64
	phi     []float64
	sigma   []float64
	weights []float64
	rng     *rand.Rand
}

// NewMultiScaleNoise builds a noise source with the given number of
// components; time constants are 4^c intervals for component c. The output
// has approximately unit variance. rng must not be nil.
func NewMultiScaleNoise(components int, rng *rand.Rand) (*MultiScaleNoise, error) {
	if components < 1 {
		return nil, fmt.Errorf("%w: %d components", ErrLRDConfig, components)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrLRDConfig)
	}
	m := &MultiScaleNoise{
		state:   make([]float64, components),
		phi:     make([]float64, components),
		sigma:   make([]float64, components),
		weights: make([]float64, components),
		rng:     rng,
	}
	var wsum float64
	for c := 0; c < components; c++ {
		tau := math.Pow(4, float64(c))
		m.phi[c] = math.Exp(-1 / tau)
		// Innovation variance giving each component unit variance.
		m.sigma[c] = math.Sqrt(1 - m.phi[c]*m.phi[c])
		// Slowly decaying weights mimic the 1/f spectral profile.
		m.weights[c] = math.Pow(0.75, float64(c))
		wsum += m.weights[c] * m.weights[c]
		// Start at stationarity.
		m.state[c] = rng.NormFloat64()
	}
	norm := 1 / math.Sqrt(wsum)
	for c := range m.weights {
		m.weights[c] *= norm
	}
	return m, nil
}

// Step advances the process one interval and returns the next sample.
func (m *MultiScaleNoise) Step() float64 {
	var out float64
	for c := range m.state {
		m.state[c] = m.phi[c]*m.state[c] + m.sigma[c]*m.rng.NormFloat64()
		out += m.weights[c] * m.state[c]
	}
	return out
}

// EstimateHurst estimates the Hurst parameter of data with the aggregated-
// variance method: for block sizes b the variance of block means scales as
// b^{2H−2}; H is recovered by least-squares on the log-log plot.
func EstimateHurst(data []float64) (float64, error) {
	if len(data) < 64 {
		return 0, fmt.Errorf("%w: need at least 64 samples, got %d", ErrLRDConfig, len(data))
	}
	var xs, ys []float64
	for b := 1; b <= len(data)/8; b *= 2 {
		nBlocks := len(data) / b
		means := make([]float64, nBlocks)
		for i := 0; i < nBlocks; i++ {
			var s float64
			for j := i * b; j < (i+1)*b; j++ {
				s += data[j]
			}
			means[i] = s / float64(b)
		}
		// Variance of block means.
		var mean float64
		for _, v := range means {
			mean += v
		}
		mean /= float64(nBlocks)
		var variance float64
		for _, v := range means {
			d := v - mean
			variance += d * d
		}
		variance /= float64(nBlocks)
		if variance <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(b)))
		ys = append(ys, math.Log(variance))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("%w: degenerate series", ErrLRDConfig)
	}
	// Least-squares slope.
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	fn := float64(len(xs))
	slope := (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
	return slope/2 + 1, nil
}
