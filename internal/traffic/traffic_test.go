package traffic

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRouterPrefixAndAddr(t *testing.T) {
	p, err := RouterPrefix(3)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.3.0.0/16" {
		t.Fatalf("prefix = %v", p)
	}
	a, err := RouterAddr(3, 0x0102)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "10.3.1.2" {
		t.Fatalf("addr = %v", a)
	}
	if !p.Contains(a) {
		t.Fatal("router address must fall in router prefix")
	}
	if _, err := RouterPrefix(-1); err == nil {
		t.Fatal("negative router must fail")
	}
	if _, err := RouterAddr(300, 0); err == nil {
		t.Fatal("router 300 must fail")
	}
}

func TestBuildRoutingTable(t *testing.T) {
	tbl, err := BuildRoutingTable(9)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 9 {
		t.Fatalf("table size = %d", tbl.Len())
	}
	if _, err := BuildRoutingTable(0); err == nil {
		t.Fatal("zero routers must fail")
	}
}

func TestNewAbileneAggregator(t *testing.T) {
	agg, err := NewAbileneAggregator()
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumFlows() != 81 {
		t.Fatalf("flows = %d, want 81", agg.NumFlows())
	}
	if got := agg.FlowName(0*9 + 1); got != "ATLA→CHIC" {
		t.Fatalf("flow name = %q", got)
	}
}

func TestFGNBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, err := FGN(512, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 512 {
		t.Fatalf("len = %d", len(x))
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite at %d", i)
		}
	}
	// Unit marginal variance, roughly.
	var mean, variance float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(x))
	if variance < 0.4 || variance > 2.5 {
		t.Fatalf("variance = %v, want ≈1", variance)
	}
}

func TestFGNValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := FGN(-1, 0.8, rng); !errors.Is(err, ErrLRDConfig) {
		t.Fatalf("negative n: %v", err)
	}
	for _, h := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := FGN(10, h, rng); !errors.Is(err, ErrLRDConfig) {
			t.Fatalf("hurst %v: %v", h, err)
		}
	}
	out, err := FGN(0, 0.8, rng)
	if err != nil || out != nil {
		t.Fatalf("n=0: %v, %v", out, err)
	}
}

func TestFGNHurstRecovery(t *testing.T) {
	// The aggregated-variance estimator should recover H within a loose
	// tolerance, and H=0.85 noise must estimate clearly above H=0.5 noise.
	rng := rand.New(rand.NewSource(5))
	long, err := FGN(4096, 0.85, rng)
	if err != nil {
		t.Fatal(err)
	}
	hLong, err := EstimateHurst(long)
	if err != nil {
		t.Fatal(err)
	}
	short := make([]float64, 4096)
	for i := range short {
		short[i] = rng.NormFloat64() // H = 0.5 white noise
	}
	hShort, err := EstimateHurst(short)
	if err != nil {
		t.Fatal(err)
	}
	if hLong < 0.65 {
		t.Fatalf("estimated H for fGn(0.85) = %v, want > 0.65", hLong)
	}
	if hShort > 0.65 {
		t.Fatalf("estimated H for white noise = %v, want < 0.65", hShort)
	}
	if hLong <= hShort {
		t.Fatalf("H(fGn 0.85) = %v must exceed H(white) = %v", hLong, hShort)
	}
}

func TestEstimateHurstErrors(t *testing.T) {
	if _, err := EstimateHurst(make([]float64, 10)); !errors.Is(err, ErrLRDConfig) {
		t.Fatalf("short: %v", err)
	}
	if _, err := EstimateHurst(make([]float64, 128)); !errors.Is(err, ErrLRDConfig) {
		t.Fatalf("constant series: %v", err)
	}
}

func TestMultiScaleNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewMultiScaleNoise(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	data := make([]float64, n)
	for i := range data {
		data[i] = m.Step()
	}
	var mean, variance float64
	for _, v := range data {
		mean += v
	}
	mean /= float64(n)
	for _, v := range data {
		d := v - mean
		variance += d * d
	}
	variance /= float64(n)
	if variance < 0.3 || variance > 3 {
		t.Fatalf("variance = %v, want ≈1", variance)
	}
	// Long-memory flavour: estimated Hurst above white noise's.
	h, err := EstimateHurst(data)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.6 {
		t.Fatalf("multi-scale noise Hurst estimate = %v, want > 0.6", h)
	}
	if _, err := NewMultiScaleNoise(0, rng); !errors.Is(err, ErrLRDConfig) {
		t.Fatalf("zero components: %v", err)
	}
	if _, err := NewMultiScaleNoise(3, nil); !errors.Is(err, ErrLRDConfig) {
		t.Fatalf("nil rng: %v", err)
	}
}

func TestGenerateDefaults(t *testing.T) {
	tr, err := Generate(GeneratorConfig{NumIntervals: 600, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFlows() != 81 || tr.NumIntervals() != 600 {
		t.Fatalf("shape = %dx%d", tr.NumIntervals(), tr.NumFlows())
	}
	if len(tr.FlowNames) != 81 || tr.FlowNames[1] != "ATLA→CHIC" {
		t.Fatalf("flow names = %v…", tr.FlowNames[:3])
	}
	// Volumes non-negative and finite.
	for i := 0; i < tr.NumIntervals(); i++ {
		for j := 0; j < tr.NumFlows(); j++ {
			v := tr.Volumes.At(i, j)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("bad volume %v at (%d,%d)", v, i, j)
			}
		}
	}
	// Total volume is near the configured scale.
	var total float64
	for j := 0; j < tr.NumFlows(); j++ {
		total += tr.Volumes.At(0, j)
	}
	if total < 1e7 || total > 1e9 {
		t.Fatalf("network volume per interval = %v, want ≈1e8", total)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{NumIntervals: 100, Seed: 44}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Volumes.Equal(b.Volumes, 0) {
		t.Fatal("same seed must reproduce the same trace")
	}
	cfg.Seed = 45
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Volumes.Equal(c.Volumes, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GeneratorConfig{}); !errors.Is(err, ErrGenConfig) {
		t.Fatalf("no intervals: %v", err)
	}
	if _, err := Generate(GeneratorConfig{NumIntervals: 10, Routers: []string{"A"}}); !errors.Is(err, ErrGenConfig) {
		t.Fatalf("one router: %v", err)
	}
	if _, err := Generate(GeneratorConfig{
		NumIntervals: 10, Routers: []string{"A", "B"}, RouterWeights: []float64{1},
	}); !errors.Is(err, ErrGenConfig) {
		t.Fatalf("weight mismatch: %v", err)
	}
	if _, err := Generate(GeneratorConfig{NumIntervals: 10, NoiseLevel: -1}); !errors.Is(err, ErrGenConfig) {
		t.Fatalf("negative noise: %v", err)
	}
	if _, err := Generate(GeneratorConfig{NumIntervals: 10, TotalVolume: -1}); !errors.Is(err, ErrGenConfig) {
		t.Fatalf("negative volume: %v", err)
	}
}

func TestGenerateLowRankStructure(t *testing.T) {
	// The centered volume matrix must concentrate most energy in a few
	// principal directions — the property PCA detection relies on.
	tr, err := Generate(GeneratorConfig{NumIntervals: 800, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	y := tr.Volumes.Clone()
	y.CenterColumns()
	g := y.Gram()
	// Total energy vs energy in top 10 eigenvalues via power-iteration-free
	// route: use the trace for total and the mat eigen solver for spectrum.
	eig, err := symEigenForTest(g)
	if err != nil {
		t.Fatal(err)
	}
	var total, top float64
	for i, v := range eig {
		if v < 0 {
			v = 0
		}
		total += v
		if i < 10 {
			top += v
		}
	}
	if total == 0 {
		t.Fatal("degenerate trace")
	}
	if frac := top / total; frac < 0.8 {
		t.Fatalf("top-10 PCs capture %v of energy, want ≥ 0.8", frac)
	}
}

func TestInjectSpike(t *testing.T) {
	tr, err := Generate(GeneratorConfig{NumIntervals: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := tr.FlowIndex("ATLA→CHIC")
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Volumes.At(100, j)
	if err := tr.InjectSpike(j, 100, 105, 3); err != nil {
		t.Fatal(err)
	}
	after := tr.Volumes.At(100, j)
	base, err := tr.BaselineMean(j)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-before-3*base) > 1e-6*base {
		t.Fatalf("spike delta = %v, want %v", after-before, 3*base)
	}
	labels := tr.Labels()
	if !labels[100] || !labels[104] || labels[105] || labels[99] {
		t.Fatal("labels must cover exactly [100,105)")
	}
	if len(tr.Injections) != 1 || tr.Injections[0].Kind != Spike {
		t.Fatalf("injections = %+v", tr.Injections)
	}
}

func TestInjectCoordinated(t *testing.T) {
	tr, err := Generate(GeneratorConfig{NumIntervals: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flows := []int{1, 12, 33, 61}
	if err := tr.InjectCoordinated(flows, 50, 55, 0.4); err != nil {
		t.Fatal(err)
	}
	inj := tr.Injections[0]
	if inj.Kind != Coordinated || len(inj.Flows) != 4 {
		t.Fatalf("injection = %+v", inj)
	}
	// The recorded flows are a copy.
	flows[0] = 99
	if inj.Flows[0] == 99 {
		t.Fatal("injection must copy the flow list")
	}
}

func TestInjectFlashCrowd(t *testing.T) {
	tr, err := Generate(GeneratorConfig{NumIntervals: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectFlashCrowd(1, 40, 60, 2); err != nil {
		t.Fatal(err)
	}
	inj := tr.Injections[0]
	if inj.Kind != FlashCrowd || len(inj.Flows) != 8 {
		t.Fatalf("injection = %+v", inj)
	}
	// Ramp: the addition at the end of the window exceeds the start.
	j := inj.Flows[0]
	base, _ := tr.BaselineMean(j)
	early := tr.Volumes.At(41, j)
	late := tr.Volumes.At(59, j)
	if late-early < base/2 {
		t.Fatalf("flash crowd must ramp: early %v late %v base %v", early, late, base)
	}
	if err := tr.InjectFlashCrowd(99, 0, 10, 1); !errors.Is(err, ErrInject) {
		t.Fatalf("bad destination: %v", err)
	}
}

func TestInjectValidation(t *testing.T) {
	tr, err := Generate(GeneratorConfig{NumIntervals: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []error{
		tr.InjectSpike(0, -1, 5, 1),
		tr.InjectSpike(0, 5, 5, 1),
		tr.InjectSpike(0, 10, 500, 1),
		tr.InjectSpike(999, 0, 5, 1),
		tr.InjectSpike(0, 0, 5, -1),
		tr.InjectSpike(0, 0, 5, math.NaN()),
		tr.InjectCoordinated(nil, 0, 5, 1),
	}
	for i, err := range cases {
		if !errors.Is(err, ErrInject) {
			t.Fatalf("case %d: want ErrInject, got %v", i, err)
		}
	}
	if _, err := tr.FlowIndex("NOPE→NOPE"); !errors.Is(err, ErrInject) {
		t.Fatalf("flow index: %v", err)
	}
	if _, err := tr.BaselineMean(-1); !errors.Is(err, ErrInject) {
		t.Fatalf("baseline mean: %v", err)
	}
}

func TestPacketizeRoundTrip(t *testing.T) {
	tr, err := Generate(GeneratorConfig{
		Routers:      []string{"A", "B", "C"},
		NumIntervals: 5,
		Seed:         7,
		TotalVolume:  1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := tr.Packetize(2, PacketizeOptions{MaxPackets: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Fatal("no packets")
	}
	// Re-aggregate the packets and compare per-flow byte totals with the
	// trace row (within rounding: sizes are truncated to ints).
	tbl, err := BuildRoutingTable(3)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := newAggForTest(tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 9)
	for _, p := range pkts {
		id, err := agg.FlowID(p)
		if err != nil {
			t.Fatal(err)
		}
		got[id] += float64(p.Size)
	}
	for j := 0; j < 9; j++ {
		want := tr.Volumes.At(2, j)
		if math.Abs(got[j]-want) > 8+want*1e-3 {
			t.Fatalf("flow %d: packetized %v, trace %v", j, got[j], want)
		}
	}
	if _, err := tr.Packetize(99, PacketizeOptions{}); !errors.Is(err, ErrInject) {
		t.Fatalf("bad interval: %v", err)
	}
}

// Property: generation never yields negative or non-finite volumes.
func TestQuickGenerateNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		tr, err := Generate(GeneratorConfig{
			Routers:      []string{"A", "B", "C", "D"},
			NumIntervals: 64,
			Seed:         seed,
		})
		if err != nil {
			return false
		}
		for i := 0; i < tr.NumIntervals(); i++ {
			for j := 0; j < tr.NumFlows(); j++ {
				v := tr.Volumes.At(i, j)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
