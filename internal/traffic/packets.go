package traffic

import (
	"fmt"
	"math/rand"

	"streampca/internal/flow"
)

// PacketizeOptions controls packet synthesis from an interval of a trace.
type PacketizeOptions struct {
	// MaxPackets caps the number of packets emitted per flow per interval;
	// volumes are split evenly across them. Defaults to 16 (the volumes
	// represent bytes, so full-fidelity packetization would be millions of
	// packets per interval — the cap keeps examples fast while still
	// exercising the aggregation path).
	MaxPackets int
	// Seed diversifies host addresses.
	Seed int64
}

// Packetize synthesizes packet headers carrying interval i's volumes, so the
// flow-aggregation and volume-counter path can be exercised end to end.
// Flows with zero volume emit no packets.
func (tr *Trace) Packetize(i int, opts PacketizeOptions) ([]flow.Packet, error) {
	if i < 0 || i >= tr.NumIntervals() {
		return nil, fmt.Errorf("%w: interval %d of %d", ErrInject, i, tr.NumIntervals())
	}
	maxPackets := opts.MaxPackets
	if maxPackets <= 0 {
		maxPackets = 16
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
	nR := len(tr.RouterNames)
	row := tr.Volumes.RowView(i)
	var out []flow.Packet
	for j, v := range row {
		if v <= 0 {
			continue
		}
		o, d := j/nR, j%nR
		count := maxPackets
		per := v / float64(count)
		for p := 0; p < count; p++ {
			src, err := RouterAddr(o, uint16(rng.Intn(1<<16)))
			if err != nil {
				return nil, err
			}
			dst, err := RouterAddr(d, uint16(rng.Intn(1<<16)))
			if err != nil {
				return nil, err
			}
			out = append(out, flow.Packet{Src: src, Dst: dst, Size: int(per)})
		}
	}
	return out, nil
}
