package traffic

import (
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"
)

const sampleCSV = `interval,A→A,A→B,B→A,B→B,label
0,10,20,30,40,0
1,11,21,31,41,1
2,12,22,32,42,0
`

func TestReadCSVBasic(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumIntervals() != 3 || tr.NumFlows() != 4 {
		t.Fatalf("shape = %dx%d", tr.NumIntervals(), tr.NumFlows())
	}
	if tr.Volumes.At(1, 2) != 31 {
		t.Fatalf("volume(1,2) = %v", tr.Volumes.At(1, 2))
	}
	labels := tr.Labels()
	if labels[0] || !labels[1] || labels[2] {
		t.Fatalf("labels = %v", labels)
	}
	if len(tr.RouterNames) != 2 || tr.RouterNames[0] != "A" || tr.RouterNames[1] != "B" {
		t.Fatalf("routers = %v", tr.RouterNames)
	}
	// Baseline means are column averages.
	base, err := tr.BaselineMean(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base-11) > 1e-12 {
		t.Fatalf("baseline = %v", base)
	}
	// Injection helpers work on loaded traces and extend the labels.
	if err := tr.InjectSpike(1, 2, 3, 1.0); err != nil {
		t.Fatal(err)
	}
	labels = tr.Labels()
	if !labels[1] || !labels[2] {
		t.Fatalf("labels after injection = %v", labels)
	}
}

func TestReadCSVNoLabel(t *testing.T) {
	in := "interval,f1,f2\n0,5,6\n1,7,8\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFlows() != 2 {
		t.Fatalf("flows = %d", tr.NumFlows())
	}
	for _, l := range tr.Labels() {
		if l {
			t.Fatal("unlabeled trace must have no anomalies")
		}
	}
	if tr.RouterNames != nil {
		t.Fatalf("non-OD flow names must not recover routers: %v", tr.RouterNames)
	}
}

func TestReadCSVSkipsCommentsAndBlank(t *testing.T) {
	in := "interval,f1\n# a comment\n\n0,5\n1,6\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumIntervals() != 2 {
		t.Fatalf("intervals = %d", tr.NumIntervals())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"wrong,f1\n0,5\n",                // bad header
		"interval\n",                     // no flows
		"interval,f1\n0\n",               // short row
		"interval,f1\n0,abc\n",           // bad volume
		"interval,f1\n0,-5\n",            // negative volume
		"interval,f1,label\n0,5,maybe\n", // bad label
		"interval,f1\n",                  // no data rows
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrCSV) {
			t.Fatalf("case %d: want ErrCSV, got %v", i, err)
		}
	}
}

func TestReadCSVRoundTripsGeneratedTrace(t *testing.T) {
	// Generated trace → CSV (as trafficgen writes it) → ReadCSV recovers
	// volumes, names and labels.
	src, err := Generate(GeneratorConfig{
		Routers: []string{"X", "Y", "Z"}, NumIntervals: 12, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.InjectSpike(2, 5, 7, 2); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("interval")
	for _, n := range src.FlowNames {
		sb.WriteString("," + n)
	}
	sb.WriteString(",label\n")
	labels := src.Labels()
	for i := 0; i < src.NumIntervals(); i++ {
		sb.WriteString(itoa(i))
		for j := 0; j < src.NumFlows(); j++ {
			sb.WriteString("," + ftoa(src.Volumes.At(i, j)))
		}
		if labels[i] {
			sb.WriteString(",1\n")
		} else {
			sb.WriteString(",0\n")
		}
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFlows() != 9 || got.NumIntervals() != 12 {
		t.Fatalf("shape = %dx%d", got.NumIntervals(), got.NumFlows())
	}
	if len(got.RouterNames) != 3 {
		t.Fatalf("routers = %v", got.RouterNames)
	}
	gotLabels := got.Labels()
	for i := range labels {
		if labels[i] != gotLabels[i] {
			t.Fatalf("label %d mismatch", i)
		}
	}
	// Volumes agree to the integer formatting used in the CSV.
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			if math.Abs(got.Volumes.At(i, j)-src.Volumes.At(i, j)) > 1 {
				t.Fatalf("volume (%d,%d) drifted", i, j)
			}
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }
