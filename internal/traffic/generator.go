package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"streampca/internal/mat"
)

// Errors returned by the generator.
var (
	// ErrGenConfig indicates an invalid generator configuration.
	ErrGenConfig = errors.New("traffic: invalid generator configuration")
	// ErrInject indicates an invalid anomaly injection request.
	ErrInject = errors.New("traffic: invalid anomaly injection")
)

// AnomalyKind classifies injected anomalies.
type AnomalyKind int

const (
	// Spike is a high-profile volume surge on a single OD flow (DDoS,
	// large transfer).
	Spike AnomalyKind = iota + 1
	// Coordinated is a low-profile, simultaneous shift across several OD
	// flows (botnet-style), the paper's headline target.
	Coordinated
	// FlashCrowd is a gradual ramp of traffic toward one destination
	// router across all its incoming OD flows.
	FlashCrowd
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	switch k {
	case Spike:
		return "spike"
	case Coordinated:
		return "coordinated"
	case FlashCrowd:
		return "flash-crowd"
	default:
		if s, ok := attackKindString(k); ok {
			return s
		}
		return "unknown"
	}
}

// Injection records one injected anomaly for ground-truth labeling.
type Injection struct {
	Kind AnomalyKind
	// Start and End delimit the affected interval indices [Start, End).
	Start, End int
	// Flows lists the affected OD-flow indices.
	Flows []int
	// Magnitude is the added volume per affected flow per interval, as a
	// fraction of that flow's baseline mean.
	Magnitude float64
}

// Trace is a generated OD-flow volume matrix with ground-truth labels.
type Trace struct {
	// Volumes is the n×m matrix of per-interval OD-flow byte volumes.
	Volumes *mat.Matrix
	// FlowNames[j] names OD flow j ("ATLA→CHIC").
	FlowNames []string
	// RouterNames lists the routers.
	RouterNames []string
	// IntervalsPerDay records the time resolution.
	IntervalsPerDay int
	// StartInterval is the global index of row 0 (rows are consecutive).
	StartInterval int64
	// Injections are the anomalies added on top of the baseline.
	Injections []Injection
	// baseMeans[j] is flow j's baseline mean volume, used to scale
	// injections added after generation.
	baseMeans []float64
	// labelOverride, when non-nil (traces loaded from CSV), provides the
	// ground-truth labels directly; injections still extend it.
	labelOverride []bool
}

// GeneratorConfig parameterizes Generate.
type GeneratorConfig struct {
	// Routers names the routers; defaults to AbileneRouters when nil.
	Routers []string
	// RouterWeights gives the gravity-model mass per router; defaults to
	// the Abilene weights (or all-ones for custom router sets).
	RouterWeights []float64
	// NumIntervals is n, the number of rows to generate. Required.
	NumIntervals int
	// IntervalsPerDay sets the diurnal period; defaults to 288 (5-minute
	// intervals).
	IntervalsPerDay int
	// Seed drives all randomness; the same config generates the same trace.
	Seed int64
	// Factors is the number of shared latent factors; defaults to 6.
	Factors int
	// NoiseLevel is the relative amplitude of the LRD factor noise;
	// defaults to 0.12.
	NoiseLevel float64
	// LocalNoiseLevel is the relative amplitude of per-flow idiosyncratic
	// noise; defaults to 0.03.
	LocalNoiseLevel float64
	// TotalVolume scales the network-wide mean bytes per interval;
	// defaults to 1e8 (order of the Abilene per-interval volumes in
	// Fig. 5).
	TotalVolume float64
}

func (cfg *GeneratorConfig) applyDefaults() error {
	if cfg.NumIntervals <= 0 {
		return fmt.Errorf("%w: %d intervals", ErrGenConfig, cfg.NumIntervals)
	}
	if cfg.Routers == nil {
		cfg.Routers = AbileneRouters
		if cfg.RouterWeights == nil {
			cfg.RouterWeights = abileneWeights
		}
	}
	if len(cfg.Routers) < 2 {
		return fmt.Errorf("%w: %d routers", ErrGenConfig, len(cfg.Routers))
	}
	if cfg.RouterWeights == nil {
		cfg.RouterWeights = make([]float64, len(cfg.Routers))
		for i := range cfg.RouterWeights {
			cfg.RouterWeights[i] = 1
		}
	}
	if len(cfg.RouterWeights) != len(cfg.Routers) {
		return fmt.Errorf("%w: %d weights for %d routers", ErrGenConfig,
			len(cfg.RouterWeights), len(cfg.Routers))
	}
	if cfg.IntervalsPerDay <= 0 {
		cfg.IntervalsPerDay = IntervalsPerDay5Min
	}
	if cfg.Factors <= 0 {
		cfg.Factors = 6
	}
	if cfg.NoiseLevel == 0 {
		cfg.NoiseLevel = 0.12
	}
	if cfg.NoiseLevel < 0 || cfg.LocalNoiseLevel < 0 {
		return fmt.Errorf("%w: negative noise level", ErrGenConfig)
	}
	if cfg.LocalNoiseLevel == 0 {
		cfg.LocalNoiseLevel = 0.03
	}
	if cfg.TotalVolume == 0 {
		cfg.TotalVolume = 1e8
	}
	if cfg.TotalVolume < 0 {
		return fmt.Errorf("%w: negative total volume", ErrGenConfig)
	}
	return nil
}

// Generate produces a synthetic OD-flow trace per the latent-factor model
// described in the package comment. The result is deterministic in cfg.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	nR := len(cfg.Routers)
	m := nR * nR
	n := cfg.NumIntervals
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Gravity-model base rates: rate(o→d) ∝ w_o·w_d.
	baseMeans := make([]float64, m)
	var wSum float64
	for _, w := range cfg.RouterWeights {
		wSum += w
	}
	for o := 0; o < nR; o++ {
		for d := 0; d < nR; d++ {
			share := cfg.RouterWeights[o] * cfg.RouterWeights[d] / (wSum * wSum)
			baseMeans[o*nR+d] = cfg.TotalVolume * share
		}
	}

	// Factor loadings: every flow loads on factor 0 (network-wide diurnal
	// mass) plus a sparse random mix of the remaining factors, keeping the
	// matrix approximately low-rank like real backbone traffic.
	loadings := make([][]float64, m)
	for j := 0; j < m; j++ {
		row := make([]float64, cfg.Factors)
		row[0] = 1
		for f := 1; f < cfg.Factors; f++ {
			if rng.Float64() < 0.4 {
				row[f] = 0.3 + 0.7*rng.Float64()
			}
		}
		// Normalize so factor mixing does not change the mean scale.
		var s float64
		for _, v := range row {
			s += v
		}
		for f := range row {
			row[f] /= s
		}
		loadings[j] = row
	}

	// Factor time series: diurnal + weekly modulation + LRD noise,
	// strictly positive (clipped at a floor).
	factorSeries := make([][]float64, cfg.Factors)
	for f := 0; f < cfg.Factors; f++ {
		noise, err := NewMultiScaleNoise(5, rng)
		if err != nil {
			return nil, err
		}
		phase := rng.Float64() * 2 * math.Pi
		diurnalAmp := 0.25 + 0.2*rng.Float64()
		weeklyAmp := 0.05 + 0.05*rng.Float64()
		series := make([]float64, n)
		day := float64(cfg.IntervalsPerDay)
		for i := 0; i < n; i++ {
			tDay := 2 * math.Pi * float64(i) / day
			tWeek := tDay / 7
			v := 1 +
				diurnalAmp*math.Sin(tDay+phase) +
				weeklyAmp*math.Sin(tWeek+phase/2) +
				cfg.NoiseLevel*noise.Step()
			if v < 0.05 {
				v = 0.05
			}
			series[i] = v
		}
		factorSeries[f] = series
	}

	// Assemble volumes.
	vol := mat.NewMatrix(n, m)
	for i := 0; i < n; i++ {
		row := vol.RowView(i)
		for j := 0; j < m; j++ {
			var fmix float64
			for f, l := range loadings[j] {
				if l != 0 {
					fmix += l * factorSeries[f][i]
				}
			}
			v := baseMeans[j] * fmix * (1 + cfg.LocalNoiseLevel*rng.NormFloat64())
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}

	flowNames := make([]string, m)
	for o := 0; o < nR; o++ {
		for d := 0; d < nR; d++ {
			flowNames[o*nR+d] = cfg.Routers[o] + "→" + cfg.Routers[d]
		}
	}
	routers := make([]string, nR)
	copy(routers, cfg.Routers)

	return &Trace{
		Volumes:         vol,
		FlowNames:       flowNames,
		RouterNames:     routers,
		IntervalsPerDay: cfg.IntervalsPerDay,
		StartInterval:   1,
		baseMeans:       baseMeans,
	}, nil
}

// NumIntervals returns n, the number of rows.
func (tr *Trace) NumIntervals() int { return tr.Volumes.Rows() }

// NumFlows returns m, the number of OD flows.
func (tr *Trace) NumFlows() int { return tr.Volumes.Cols() }

// FlowIndex returns the index of the named OD flow ("ATLA→CHIC").
func (tr *Trace) FlowIndex(name string) (int, error) {
	for j, fn := range tr.FlowNames {
		if fn == name {
			return j, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown flow %q", ErrInject, name)
}

func (tr *Trace) checkInjection(start, end int, flows []int) error {
	if start < 0 || end > tr.NumIntervals() || start >= end {
		return fmt.Errorf("%w: interval range [%d,%d) of %d", ErrInject, start, end, tr.NumIntervals())
	}
	if len(flows) == 0 {
		return fmt.Errorf("%w: no flows", ErrInject)
	}
	for _, f := range flows {
		if f < 0 || f >= tr.NumFlows() {
			return fmt.Errorf("%w: flow %d of %d", ErrInject, f, tr.NumFlows())
		}
	}
	return nil
}

// InjectSpike adds a high-profile anomaly: magnitude×baseline extra volume
// on one flow for intervals [start, end).
func (tr *Trace) InjectSpike(flowID, start, end int, magnitude float64) error {
	return tr.inject(Spike, []int{flowID}, start, end, magnitude)
}

// InjectCoordinated adds a low-profile coordinated anomaly: each listed flow
// gains magnitude×its-baseline extra volume simultaneously over [start, end).
func (tr *Trace) InjectCoordinated(flows []int, start, end int, magnitude float64) error {
	return tr.inject(Coordinated, flows, start, end, magnitude)
}

func (tr *Trace) inject(kind AnomalyKind, flows []int, start, end int, magnitude float64) error {
	if err := tr.checkInjection(start, end, flows); err != nil {
		return err
	}
	if magnitude <= 0 || math.IsNaN(magnitude) || math.IsInf(magnitude, 0) {
		return fmt.Errorf("%w: magnitude %v", ErrInject, magnitude)
	}
	for i := start; i < end; i++ {
		row := tr.Volumes.RowView(i)
		for _, f := range flows {
			row[f] += magnitude * tr.baseMeans[f]
		}
	}
	tr.Injections = append(tr.Injections, Injection{
		Kind: kind, Start: start, End: end,
		Flows: append([]int(nil), flows...), Magnitude: magnitude,
	})
	return nil
}

// InjectFlashCrowd ramps traffic toward destination router destIdx linearly
// from zero to peakMagnitude×baseline across [start, end) on every OD flow
// into that destination.
func (tr *Trace) InjectFlashCrowd(destIdx, start, end int, peakMagnitude float64) error {
	nR := len(tr.RouterNames)
	if destIdx < 0 || destIdx >= nR {
		return fmt.Errorf("%w: destination router %d of %d", ErrInject, destIdx, nR)
	}
	if peakMagnitude <= 0 || math.IsNaN(peakMagnitude) || math.IsInf(peakMagnitude, 0) {
		return fmt.Errorf("%w: magnitude %v", ErrInject, peakMagnitude)
	}
	flows := make([]int, 0, nR-1)
	for o := 0; o < nR; o++ {
		if o == destIdx {
			continue
		}
		flows = append(flows, o*nR+destIdx)
	}
	if err := tr.checkInjection(start, end, flows); err != nil {
		return err
	}
	span := float64(end - start)
	for i := start; i < end; i++ {
		ramp := float64(i-start+1) / span
		row := tr.Volumes.RowView(i)
		for _, f := range flows {
			row[f] += peakMagnitude * ramp * tr.baseMeans[f]
		}
	}
	tr.Injections = append(tr.Injections, Injection{
		Kind: FlashCrowd, Start: start, End: end, Flows: flows, Magnitude: peakMagnitude,
	})
	return nil
}

// Labels returns the ground-truth anomaly mask: Labels()[i] is true when
// interval i lies inside any injection (or was labeled in a loaded trace).
func (tr *Trace) Labels() []bool {
	out := make([]bool, tr.NumIntervals())
	copy(out, tr.labelOverride)
	for _, inj := range tr.Injections {
		for i := inj.Start; i < inj.End && i < len(out); i++ {
			out[i] = true
		}
	}
	return out
}

// BaselineMean returns flow j's baseline mean volume.
func (tr *Trace) BaselineMean(j int) (float64, error) {
	if j < 0 || j >= len(tr.baseMeans) {
		return 0, fmt.Errorf("%w: flow %d of %d", ErrInject, j, len(tr.baseMeans))
	}
	return tr.baseMeans[j], nil
}
