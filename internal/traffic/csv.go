package traffic

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"streampca/internal/mat"
)

// ErrCSV indicates a malformed trace file.
var ErrCSV = errors.New("traffic: malformed trace CSV")

// ReadCSV parses a trace in the trafficgen format:
//
//	interval,<flow name>,...,<flow name>[,label]
//	0,12345,...,67890[,0|1]
//
// The label column is optional; when present it populates the trace's
// ground-truth labels. Flow names of the form "A→B" over a consistent
// router set also recover RouterNames; otherwise RouterNames stays empty
// and injection helpers that need the topology are unavailable.
func ReadCSV(r io.Reader) (*Trace, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	if !scanner.Scan() {
		if err := scanner.Err(); err != nil {
			return nil, fmt.Errorf("read header: %w", err)
		}
		return nil, fmt.Errorf("%w: empty input", ErrCSV)
	}
	header := strings.Split(strings.TrimSpace(scanner.Text()), ",")
	if len(header) < 2 || header[0] != "interval" {
		return nil, fmt.Errorf("%w: header must start with \"interval\"", ErrCSV)
	}
	hasLabel := header[len(header)-1] == "label"
	flowNames := header[1:]
	if hasLabel {
		flowNames = header[1 : len(header)-1]
	}
	if len(flowNames) == 0 {
		return nil, fmt.Errorf("%w: no flow columns", ErrCSV)
	}
	m := len(flowNames)

	var rows [][]float64
	var labels []bool
	lineNo := 1
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		want := 1 + m
		if hasLabel {
			want++
		}
		if len(fields) != want {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d", ErrCSV, lineNo, len(fields), want)
		}
		row := make([]float64, m)
		for j := 0; j < m; j++ {
			v, err := strconv.ParseFloat(fields[1+j], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d column %d: %v", ErrCSV, lineNo, j, err)
			}
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: line %d column %d: invalid volume %v", ErrCSV, lineNo, j, v)
			}
			row[j] = v
		}
		rows = append(rows, row)
		if hasLabel {
			switch fields[len(fields)-1] {
			case "0":
				labels = append(labels, false)
			case "1":
				labels = append(labels, true)
			default:
				return nil, fmt.Errorf("%w: line %d: label %q", ErrCSV, lineNo, fields[len(fields)-1])
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("read trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrCSV)
	}

	vol, err := mat.NewMatrixFromRows(rows)
	if err != nil {
		return nil, err
	}

	// Baseline means: per-column averages of the loaded data, so injection
	// helpers keep working on loaded traces.
	baseMeans := make([]float64, m)
	for j := 0; j < m; j++ {
		var s float64
		for i := 0; i < vol.Rows(); i++ {
			s += vol.At(i, j)
		}
		baseMeans[j] = s / float64(vol.Rows())
	}

	tr := &Trace{
		Volumes:         vol,
		FlowNames:       append([]string(nil), flowNames...),
		RouterNames:     routersFromFlowNames(flowNames),
		IntervalsPerDay: IntervalsPerDay5Min,
		StartInterval:   1,
		baseMeans:       baseMeans,
		labelOverride:   labels,
	}
	return tr, nil
}

// routersFromFlowNames recovers the router list when the flow names are a
// complete "A→B" OD grid; returns nil otherwise.
func routersFromFlowNames(names []string) []string {
	var routers []string
	seen := make(map[string]int)
	for _, n := range names {
		parts := strings.Split(n, "→")
		if len(parts) != 2 {
			return nil
		}
		for _, p := range parts {
			if _, ok := seen[p]; !ok {
				seen[p] = len(routers)
				routers = append(routers, p)
			}
		}
	}
	k := len(routers)
	if k*k != len(names) {
		return nil
	}
	// Verify the grid ordering matches origin-major indexing.
	for idx, n := range names {
		parts := strings.Split(n, "→")
		if seen[parts[0]]*k+seen[parts[1]] != idx {
			return nil
		}
	}
	return routers
}
