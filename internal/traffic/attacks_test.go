package traffic

import (
	"math"
	"reflect"
	"testing"
)

func attackTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := Generate(GeneratorConfig{NumIntervals: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAttackKindStrings(t *testing.T) {
	want := map[AnomalyKind]string{
		Spike: "spike", Coordinated: "coordinated", FlashCrowd: "flash-crowd",
		PortScan: "port-scan", Exfil: "exfil", DDoS: "ddos",
		AnomalyKind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	// The attack kinds must extend, not collide with, the paper kinds.
	seen := map[AnomalyKind]bool{}
	for _, k := range []AnomalyKind{Spike, Coordinated, FlashCrowd, PortScan, Exfil, DDoS} {
		if seen[k] {
			t.Fatalf("anomaly kind value %d reused", k)
		}
		seen[k] = true
	}
}

func TestInjectPortScan(t *testing.T) {
	tr := attackTrace(t)
	nR := len(tr.RouterNames)
	base := tr.Volumes.Clone()
	const src, start, end, mag = 3, 10, 14, 2.5
	if err := tr.InjectPortScan(src, start, end, mag); err != nil {
		t.Fatal(err)
	}
	inj := tr.Injections[len(tr.Injections)-1]
	if inj.Kind != PortScan || len(inj.Flows) != nR-1 {
		t.Fatalf("injection %+v", inj)
	}
	for _, f := range inj.Flows {
		if f/nR != src || f%nR == src {
			t.Fatalf("flow %d is not an outgoing flow of router %d", f, src)
		}
		for i := start; i < end; i++ {
			want := base.At(i, f) + mag*tr.baseMeans[f]
			if math.Abs(tr.Volumes.At(i, f)-want) > 1e-9*want {
				t.Fatalf("flow %d interval %d: %g want %g", f, i, tr.Volumes.At(i, f), want)
			}
		}
	}
	if err := tr.InjectPortScan(nR, 0, 4, 1); err == nil {
		t.Fatal("out-of-range source must error")
	}
}

func TestInjectExfilAndDDoS(t *testing.T) {
	tr := attackTrace(t)
	nR := len(tr.RouterNames)
	if err := tr.InjectExfil(7, 5, 60, 0.08); err != nil {
		t.Fatal(err)
	}
	if inj := tr.Injections[len(tr.Injections)-1]; inj.Kind != Exfil || !reflect.DeepEqual(inj.Flows, []int{7}) {
		t.Fatalf("exfil injection %+v", inj)
	}
	const dest = 2
	if err := tr.InjectDDoS(dest, 20, 24, 4); err != nil {
		t.Fatal(err)
	}
	inj := tr.Injections[len(tr.Injections)-1]
	if inj.Kind != DDoS || len(inj.Flows) != nR-1 {
		t.Fatalf("ddos injection %+v", inj)
	}
	for _, f := range inj.Flows {
		if f%nR != dest || f/nR == dest {
			t.Fatalf("flow %d is not an incoming flow of router %d", f, dest)
		}
	}
	if err := tr.InjectDDoS(-1, 0, 4, 1); err == nil {
		t.Fatal("out-of-range destination must error")
	}
}

func TestAnomalousFlowsAndInjectedAmount(t *testing.T) {
	tr := attackTrace(t)
	if err := tr.InjectExfil(7, 5, 15, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectSpike(7, 10, 12, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := tr.InjectSpike(30, 10, 12, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := tr.AnomalousFlows(4); got != nil {
		t.Fatalf("clean interval labeled %v", got)
	}
	if got := tr.AnomalousFlows(6); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("interval 6: %v", got)
	}
	if got := tr.AnomalousFlows(10); !reflect.DeepEqual(got, []int{7, 30}) {
		t.Fatalf("interval 10: %v (overlap must union and sort)", got)
	}
	// Overlapping injections on the same flow sum their amounts.
	want := (0.5 + 1.0) * tr.baseMeans[7]
	if got := tr.InjectedAmount(10, 7); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("injected amount %g, want %g", got, want)
	}
	if got := tr.InjectedAmount(6, 30); got != 0 {
		t.Fatalf("flow 30 at interval 6: %g, want 0", got)
	}
	// Flash-crowd amounts ramp.
	if err := tr.InjectFlashCrowd(1, 40, 44, 2.0); err != nil {
		t.Fatal(err)
	}
	f := 0*len(tr.RouterNames) + 1
	quarter := tr.InjectedAmount(40, f)
	full := tr.InjectedAmount(43, f)
	if math.Abs(quarter-0.5*tr.baseMeans[f]) > 1e-9 || math.Abs(full-2.0*tr.baseMeans[f]) > 1e-9 {
		t.Fatalf("ramp amounts %g/%g, want %g/%g", quarter, full, 0.5*tr.baseMeans[f], 2.0*tr.baseMeans[f])
	}
}
