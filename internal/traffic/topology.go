// Package traffic provides the synthetic Abilene traffic substrate that
// substitutes for the Abilene Observatory NetFlow archive used in the
// paper's evaluation (see DESIGN.md §5).
//
// The generator follows the structure that makes PCA-based detection work on
// real backbone traffic (Lakhina et al.): per-interval OD-flow volumes are
// driven by a small number of shared latent factors — diurnal and weekly
// periodicities plus long-range-dependent noise — through a gravity-model
// loading matrix, so the measurement matrix is approximately low-rank.
// Anomalies (high-profile spikes, coordinated low-profile shifts, flash
// crowds) are injected on top and recorded as ground-truth labels.
package traffic

import (
	"fmt"
	"net/netip"

	"streampca/internal/flow"
)

// AbileneRouters lists the nine Abilene backbone routers active in the
// paper's measurement period (Feb 2008 onward).
var AbileneRouters = []string{
	"ATLA", "CHIC", "HOUS", "KANS", "LOSA", "NEWY", "SALT", "SEAT", "WASH",
}

// abileneWeights approximates the relative traffic mass of each router for
// the gravity model (large exchange points carry more).
var abileneWeights = []float64{
	1.0, // ATLA
	1.6, // CHIC
	0.8, // HOUS
	0.7, // KANS
	1.3, // LOSA
	1.8, // NEWY
	0.6, // SALT
	0.9, // SEAT
	1.4, // WASH
}

// IntervalsPerDay5Min is the number of 5-minute intervals in a day.
const IntervalsPerDay5Min = 288

// IntervalsPerDay1Min is the number of 1-minute intervals in a day.
const IntervalsPerDay1Min = 1440

// RouterPrefix returns the IPv4 prefix owned by router r in the synthetic
// addressing plan (10.r.0.0/16).
func RouterPrefix(r int) (netip.Prefix, error) {
	if r < 0 || r > 255 {
		return netip.Prefix{}, fmt.Errorf("traffic: router index %d out of range", r)
	}
	addr := netip.AddrFrom4([4]byte{10, byte(r), 0, 0})
	return netip.PrefixFrom(addr, 16), nil
}

// RouterAddr returns a representative host address inside router r's prefix;
// host selects among hosts to diversify packet headers.
func RouterAddr(r int, host uint16) (netip.Addr, error) {
	if r < 0 || r > 255 {
		return netip.Addr{}, fmt.Errorf("traffic: router index %d out of range", r)
	}
	return netip.AddrFrom4([4]byte{10, byte(r), byte(host >> 8), byte(host)}), nil
}

// BuildRoutingTable installs one prefix per router into a fresh flow.Table,
// standing in for the BGP+ISIS view that maps addresses to ingress/egress
// routers.
func BuildRoutingTable(numRouters int) (*flow.Table, error) {
	if numRouters <= 0 || numRouters > 256 {
		return nil, fmt.Errorf("traffic: %d routers out of range", numRouters)
	}
	tbl := flow.NewTable()
	for r := 0; r < numRouters; r++ {
		p, err := RouterPrefix(r)
		if err != nil {
			return nil, err
		}
		if err := tbl.Insert(p, flow.RouterID(r)); err != nil {
			return nil, fmt.Errorf("install prefix for router %d: %w", r, err)
		}
	}
	return tbl, nil
}

// NewAbileneAggregator wires the synthetic routing table to a flow
// aggregator over the Abilene routers.
func NewAbileneAggregator() (*flow.Aggregator, error) {
	tbl, err := BuildRoutingTable(len(AbileneRouters))
	if err != nil {
		return nil, err
	}
	agg, err := flow.NewAggregator(tbl, len(AbileneRouters), AbileneRouters)
	if err != nil {
		return nil, err
	}
	return agg, nil
}
