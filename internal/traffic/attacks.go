package traffic

import (
	"fmt"
	"sort"
)

// Attack scenario kinds beyond the paper's evaluation set. Each injector
// records per-flow ground truth in its Injection, so identification quality
// (precision@k / recall) can be scored, not just detection.
const (
	// PortScan is a reconnaissance fan-out: one source router probes every
	// other destination simultaneously, a thin slice of extra volume on
	// each outgoing OD flow.
	PortScan AnomalyKind = iota + FlashCrowd + 1
	// Exfil is a low-and-slow exfiltration: one OD flow carries a small
	// sustained surplus over a long window — high-stealth, the opposite
	// corner of the profile space from Spike.
	Exfil
	// DDoS is a distributed flood: every source router sends a flat surge
	// into one destination at once. Same flow set as FlashCrowd on that
	// destination, but flat instead of ramped — the disambiguation pair.
	DDoS
)

// attackKindString extends AnomalyKind.String for the attack kinds.
func attackKindString(k AnomalyKind) (string, bool) {
	switch k {
	case PortScan:
		return "port-scan", true
	case Exfil:
		return "exfil", true
	case DDoS:
		return "ddos", true
	}
	return "", false
}

// InjectPortScan adds a port-scan fan-out: source router srcIdx gains
// magnitude×baseline extra volume on every outgoing OD flow (src→d for all
// d ≠ src) over [start, end).
func (tr *Trace) InjectPortScan(srcIdx, start, end int, magnitude float64) error {
	nR := len(tr.RouterNames)
	if srcIdx < 0 || srcIdx >= nR {
		return fmt.Errorf("%w: source router %d of %d", ErrInject, srcIdx, nR)
	}
	flows := make([]int, 0, nR-1)
	for d := 0; d < nR; d++ {
		if d == srcIdx {
			continue
		}
		flows = append(flows, srcIdx*nR+d)
	}
	return tr.inject(PortScan, flows, start, end, magnitude)
}

// InjectExfil adds a low-and-slow exfiltration: flowID carries
// magnitude×baseline extra volume sustained over [start, end). Use a small
// magnitude and a long window; the point of the scenario is an anomaly
// that hides under the diurnal swing of any single interval.
func (tr *Trace) InjectExfil(flowID, start, end int, magnitude float64) error {
	return tr.inject(Exfil, []int{flowID}, start, end, magnitude)
}

// InjectDDoS adds a distributed flood into destination router destIdx:
// every OD flow o→dest (o ≠ dest) gains a flat magnitude×baseline surge
// over [start, end). Contrast with InjectFlashCrowd, which ramps the same
// flow set linearly — the flash-crowd-vs-DDoS disambiguation scenario.
func (tr *Trace) InjectDDoS(destIdx, start, end int, magnitude float64) error {
	nR := len(tr.RouterNames)
	if destIdx < 0 || destIdx >= nR {
		return fmt.Errorf("%w: destination router %d of %d", ErrInject, destIdx, nR)
	}
	flows := make([]int, 0, nR-1)
	for o := 0; o < nR; o++ {
		if o == destIdx {
			continue
		}
		flows = append(flows, o*nR+destIdx)
	}
	return tr.inject(DDoS, flows, start, end, magnitude)
}

// AnomalousFlows returns the sorted union of flows injected at interval i —
// the per-interval identification ground truth. Empty for clean intervals.
func (tr *Trace) AnomalousFlows(i int) []int {
	set := map[int]struct{}{}
	for _, inj := range tr.Injections {
		if i < inj.Start || i >= inj.End {
			continue
		}
		for _, f := range inj.Flows {
			set[f] = struct{}{}
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// InjectedAmount returns the total volume injected on flow f at interval i
// across all injections (flash crowds contribute their ramped value).
func (tr *Trace) InjectedAmount(i, f int) float64 {
	var total float64
	for _, inj := range tr.Injections {
		if i < inj.Start || i >= inj.End {
			continue
		}
		hit := false
		for _, jf := range inj.Flows {
			if jf == f {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		mag := inj.Magnitude
		if inj.Kind == FlashCrowd {
			mag *= float64(i-inj.Start+1) / float64(inj.End-inj.Start)
		}
		total += mag * tr.baseMeans[f]
	}
	return total
}
