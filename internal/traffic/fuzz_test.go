package traffic

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the trace parser's contract on arbitrary text:
// malformed headers, field-count mismatches, bad numbers, and bogus labels
// must return an error — never panic — and whatever parses must have
// internally consistent dimensions.
func FuzzReadCSV(f *testing.F) {
	f.Add("interval,f0,f1\n0,1,2\n1,3,4\n")
	f.Add("interval,A→B,B→A,label\n0,1,2,0\n1,3,4,1\n")
	f.Add("interval,f0\n# comment\n\n0,5\n")
	f.Add("interval\n0\n")
	f.Add("interval,f0\n0,NaN\n")
	f.Add("interval,f0\n0,-1\n")
	f.Add("interval,f0,label\n0,1,2\n")
	f.Add("not,a,header\n0,1,2\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted traces must be dimensionally coherent.
		if tr.NumIntervals() <= 0 || tr.NumFlows() <= 0 {
			t.Fatalf("accepted trace with %d intervals × %d flows", tr.NumIntervals(), tr.NumFlows())
		}
		if len(tr.FlowNames) != tr.NumFlows() {
			t.Fatalf("%d flow names for %d flows", len(tr.FlowNames), tr.NumFlows())
		}
		if labels := tr.Labels(); len(labels) != tr.NumIntervals() {
			t.Fatalf("%d labels for %d intervals", len(labels), tr.NumIntervals())
		}
		if n := len(tr.RouterNames); n > 0 && n*n != tr.NumFlows() {
			t.Fatalf("recovered %d routers for %d flows", n, tr.NumFlows())
		}
	})
}
